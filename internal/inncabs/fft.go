package inncabs

import (
	"math"
	"math/cmplx"

	"repro/internal/sim"
)

// FFT: recursive radix-2 decimation-in-time Cooley-Tukey transform over
// complex128, spawning a task per half above the cutoff and combining
// after the join. Recursive balanced, no synchronization, variable/very
// fine grain (Table V: 1.03 µs). Both versions scale only to ~6 cores in
// the paper: the grain is overwhelmed by scheduling and memory costs.

type fftParams struct {
	n      int
	cutoff int
}

func fftSize(s Size) fftParams {
	switch s {
	case Test:
		return fftParams{n: 1 << 10, cutoff: 64}
	case Small:
		return fftParams{n: 1 << 14, cutoff: 64}
	case Medium:
		return fftParams{n: 1 << 17, cutoff: 128}
	default: // Paper: ~16M points; scaled to 2^19 here
		return fftParams{n: 1 << 19, cutoff: 128}
	}
}

func fftInput(n int) []complex128 {
	prng := newPRNG(0xFF7)
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(prng.float64n()*2-1, prng.float64n()*2-1)
	}
	return a
}

// fftSeq transforms a in place sequentially (iterative Cooley-Tukey on
// the strided view materialised by fftTask's splits).
func fftSeq(a []complex128) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// fftTask transforms a recursively: even and odd halves in parallel,
// butterfly combine after the join.
func fftTask(rt Runtime, a []complex128, cutoff int) {
	n := len(a)
	if n <= cutoff {
		fftSeq(a)
		return
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = a[2*i]
		odd[i] = a[2*i+1]
	}
	ef := rt.Async(func() any {
		fftTask(rt, even, cutoff)
		return nil
	})
	fftTask(rt, odd, cutoff)
	ef.Get()
	for k := 0; k < n/2; k++ {
		t := odd[k] * cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		a[k] = even[k] + t
		a[k+n/2] = even[k] - t
	}
}

// fftChecksum condenses the spectrum into the total energy per point
// plus a few probe-bin magnitudes, rounded coarsely: robust against the
// reassociation differences between the recursive and iterative
// transforms, yet sensitive to any structural error.
func fftChecksum(a []complex128) int64 {
	var energy float64
	for _, v := range a {
		energy += real(v)*real(v) + imag(v)*imag(v)
	}
	sum := int64(math.Round(energy/float64(len(a)))) * 1000003
	for _, k := range []int{0, 1, len(a) / 3, len(a) / 2, len(a) - 1} {
		sum = sum*31 + int64(math.Round(cmplx.Abs(a[k])))
	}
	return sum
}

func fftRun(rt Runtime, size Size) int64 {
	p := fftSize(size)
	a := fftInput(p.n)
	fftTask(rt, a, p.cutoff)
	return fftChecksum(a)
}

func fftRef(size Size) int64 {
	p := fftSize(size)
	a := fftInput(p.n)
	fftSeq(a)
	return fftChecksum(a)
}

// fftGraph: binary recursion; leaves transform cutoff points (~1 µs),
// interior nodes pay the split before and the butterfly pass after the
// join — O(range) work, the "variable" part of the grain.
func fftGraph(size Size) *sim.Graph {
	p := fftSize(size)
	depth := 0
	for n := p.n; n > p.cutoff; n /= 2 {
		depth++
	}
	if depth > 13 {
		depth = 13 // cap the simulated tree at ~16k leaves
	}
	// Butterfly cost per cutoff-block of merged range, weighted so the
	// average task duration lands at Table V's 1.03 µs while the upper
	// merge levels still dominate the critical path.
	return binaryTreeGraph("fft", depth, grainNs(1.03), grainNs(1.03)/4, fftIntensity)
}

// fftIntensity: strided complex traffic: ~4 GB/s per core.
const fftIntensity = 4e9

var fftBenchmark = register(&Benchmark{
	Name:            "fft",
	Class:           "Recursive Balanced",
	Sync:            "none",
	Granularity:     "variable/very fine",
	PaperTaskUs:     1.03,
	PaperStdScaling: "to 6",
	PaperHPXScaling: "to 6",
	MemIntensity:    fftIntensity,
	Run:             fftRun,
	RefChecksum:     fftRef,
	TaskGraph:       fftGraph,
})
