package inncabs

import (
	"context"

	"repro/internal/sim"
)

// Health: the Columbian health-care simulation (BOTS). A tree of
// villages is simulated over discrete time steps; every step descends
// the hierarchy with one task per village, moving patients between the
// local queue and the referral queue of the parent. Loop-like per step
// with a recursive descent inside, no locking (each task owns its
// village), very fine grain (Table V: 1.02 µs). The std::async version
// fails: the per-step descent keeps one thread per village alive and
// the paper's input has ~10^4 villages over thousands of steps
// (1.75×10^7 tasks total).

type healthParams struct {
	levels    int // hierarchy depth
	branching int // villages per parent
	steps     int // simulated time steps
}

func healthSize(s Size) healthParams {
	switch s {
	case Test:
		return healthParams{levels: 3, branching: 3, steps: 10}
	case Small:
		return healthParams{levels: 4, branching: 4, steps: 20}
	case Medium:
		return healthParams{levels: 5, branching: 4, steps: 40}
	case Huge:
		// ~19.5k villages x 400 steps (~7.8M tasks): a minutes-scale run
		// for cancellation and shedding tests.
		return healthParams{levels: 7, branching: 5, steps: 400}
	default: // Paper-shaped: ~5k villages x 60 steps (scaled from 1.75e7 tasks)
		return healthParams{levels: 6, branching: 5, steps: 60}
	}
}

// patient is one simulated person.
type patient struct {
	id        uint64
	remaining int // treatment steps left at the current village
}

// village is one node of the health hierarchy.
type village struct {
	id       uint64
	level    int
	children []*village
	// waiting are patients under treatment here.
	waiting []patient
	// referred collects patients sent up by children, consumed by the
	// parent's next step (single-writer per step ordering makes this
	// safe without locks).
	referred []patient
	// treated counts completed treatments (the checksum source).
	treated int64
}

// buildVillages constructs the hierarchy deterministically.
func buildVillages(p healthParams) *village {
	var id uint64
	var build func(level int) *village
	build = func(level int) *village {
		id++
		v := &village{id: id, level: level}
		if level < p.levels {
			for i := 0; i < p.branching; i++ {
				v.children = append(v.children, build(level+1))
			}
		}
		return v
	}
	return build(1)
}

// healthStep processes one village for one time step: it first recurses
// into the children (one task each), then absorbs their referrals,
// treats its waiting patients, and refers the unlucky ones upward.
func healthStep(rt Runtime, v *village, step int) {
	// One batch per village: the child descent is launched as a single
	// scheduler transaction, with Table V's 1.02 µs grain as the inline
	// hint — health is the suite's finest-grained member, exactly the
	// regime adaptive inlining targets.
	var fns []func() any
	for _, c := range v.children {
		c := c
		fns = append(fns, func() any {
			healthStep(rt, c, step)
			return nil
		})
	}
	futures := asyncAll(rt, grainNs(1.02), fns) // Table V: 1.02 µs tasks
	// New patient arrives with a deterministic pseudo-random condition.
	h := hash64(v.id*1000003 + uint64(step))
	if h%4 == 0 {
		v.waiting = append(v.waiting, patient{id: h, remaining: int(h>>8%3) + 1})
	}
	for _, f := range futures {
		f.Get()
	}
	// Absorb children's referrals.
	for _, c := range v.children {
		v.waiting = append(v.waiting, c.referred...)
		c.referred = c.referred[:0]
	}
	// Treat: decrement; discharged patients count, hard cases go up.
	kept := v.waiting[:0]
	for _, pt := range v.waiting {
		pt.remaining--
		switch {
		case pt.remaining <= 0:
			v.treated++
		case hash64(pt.id+uint64(step))%8 == 0 && v.level > 1:
			v.referred = append(v.referred, pt)
		default:
			kept = append(kept, pt)
		}
	}
	v.waiting = kept
}

// healthChecksum sums treated counts over the tree.
func healthChecksum(root *village) int64 {
	var s int64
	stack := []*village{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s += v.treated
		stack = append(stack, v.children...)
	}
	return s
}

func healthRunOn(rt Runtime, size Size) int64 {
	p := healthSize(size)
	root := buildVillages(p)
	for step := 0; step < p.steps; step++ {
		healthStep(rt, root, step)
	}
	return healthChecksum(root)
}

func healthRun(rt Runtime, size Size) int64 { return healthRunOn(rt, size) }

func healthRef(size Size) int64 { return healthRunOn(sequentialRuntime{}, size) }

// healthStepCtx is healthStep with cancellation: the descent stops once
// the context dies; already-joined children keep the village state
// consistent but the run's checksum is abandoned by the caller.
func healthStepCtx(ctx context.Context, rt Runtime, v *village, step int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var futures []Future
	for _, c := range v.children {
		c := c
		futures = append(futures, asyncCtx(ctx, rt, func() any {
			return healthStepCtx(ctx, rt, c, step)
		}))
	}
	h := hash64(v.id*1000003 + uint64(step))
	if h%4 == 0 {
		v.waiting = append(v.waiting, patient{id: h, remaining: int(h>>8%3) + 1})
	}
	var firstErr error
	for _, f := range futures {
		v2, err := getErr(f)
		if err == nil {
			if e, ok := v2.(error); ok {
				err = e
			}
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for _, c := range v.children {
		v.waiting = append(v.waiting, c.referred...)
		c.referred = c.referred[:0]
	}
	kept := v.waiting[:0]
	for _, pt := range v.waiting {
		pt.remaining--
		switch {
		case pt.remaining <= 0:
			v.treated++
		case hash64(pt.id+uint64(step))%8 == 0 && v.level > 1:
			v.referred = append(v.referred, pt)
		default:
			kept = append(kept, pt)
		}
	}
	v.waiting = kept
	return nil
}

func healthRunCtx(ctx context.Context, rt Runtime, size Size) (int64, error) {
	p := healthSize(size)
	root := buildVillages(p)
	for step := 0; step < p.steps; step++ {
		if err := healthStepCtx(ctx, rt, root, step); err != nil {
			return 0, err
		}
	}
	return healthChecksum(root), nil
}

// healthGraph: steps in series; each step is the recursive descent tree
// at the 1.02 µs grain.
func healthGraph(size Size) *sim.Graph {
	p := healthSize(size)
	if size == Paper {
		// The paper's input simulates ~10^5 villages: one step keeps
		// more threads live than the baseline's ceiling. Ten steps give
		// ~1.3M tasks (the paper's 1.75e7 scaled by ~14x; shape-neutral).
		p.levels, p.branching, p.steps = 6, 11, 8
	}
	work := grainNs(1.02)
	bytes := taskBytes(healthIntensity, work)
	var step func(level int) *sim.Node
	step = func(level int) *sim.Node {
		n := &sim.Node{PreNs: work / 2, PostNs: work / 2, PreBytes: bytes}
		if level < p.levels {
			for i := 0; i < p.branching; i++ {
				n.Children = append(n.Children, step(level+1))
			}
		}
		return n
	}
	root := &sim.Node{Serial: true}
	for s := 0; s < p.steps; s++ {
		root.Children = append(root.Children, step(1))
	}
	return &sim.Graph{Label: "health", Root: root}
}

// healthIntensity: pointer chasing over patient queues: ~1 GB/s.
const healthIntensity = 1e9

var healthBenchmark = register(&Benchmark{
	Name:            "health",
	Class:           "Loop Like",
	Sync:            "none",
	Granularity:     "very fine",
	PaperTaskUs:     1.02,
	PaperStdScaling: "fail",
	PaperHPXScaling: "to 10",
	MemIntensity:    healthIntensity,
	Run:             healthRun,
	RunCtx:          healthRunCtx,
	RefChecksum:     healthRef,
	TaskGraph:       healthGraph,
})
