package inncabs

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

func hpxTestRuntime(t testing.TB, workers int) *HPXRuntime {
	t.Helper()
	rt := taskrt.New(taskrt.WithWorkers(workers))
	t.Cleanup(rt.Shutdown)
	return NewHPX(rt)
}

func stdTestRuntime(t testing.TB) *StdRuntime {
	t.Helper()
	return NewStd(stdrt.New())
}

func TestSuiteComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14: %v", len(all), Names())
	}
	if got := all[0].Name; got != "alignment" {
		t.Fatalf("Table V order broken: first = %q", got)
	}
	if got := all[13].Name; got != "round" {
		t.Fatalf("Table V order broken: last = %q", got)
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Run == nil || b.RefChecksum == nil || b.TaskGraph == nil {
			t.Errorf("%s: incomplete registration", b.Name)
		}
		if b.PaperTaskUs <= 0 || b.MemIntensity <= 0 {
			t.Errorf("%s: missing calibration data", b.Name)
		}
		if b.Class == "" || b.Sync == "" || b.Granularity == "" {
			t.Errorf("%s: missing Table V metadata", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fib")
	if err != nil || b.Name != "fib" {
		t.Fatalf("ByName(fib) = %v, %v", b, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestSizes(t *testing.T) {
	for _, s := range []Size{Test, Small, Medium, Paper, Huge} {
		p, err := ParseSize(s.String())
		if err != nil || p != s {
			t.Errorf("round-trip %v: %v %v", s, p, err)
		}
	}
	if _, err := ParseSize("gigantic"); err == nil {
		t.Error("ParseSize accepted bogus size")
	}
	if Size(99).String() == "" {
		t.Error("unknown size has empty name")
	}
}

// TestChecksumsOnHPX runs every benchmark at Test size on the lightweight
// runtime and compares against the sequential reference — the core
// correctness property of the port.
func TestChecksumsOnHPX(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			got := b.Run(rt, Test)
			want := b.RefChecksum(Test)
			if got != want {
				t.Fatalf("%s on HPX: checksum %d, reference %d", b.Name, got, want)
			}
		})
	}
}

// TestChecksumsOnStd does the same on the thread-per-task baseline.
func TestChecksumsOnStd(t *testing.T) {
	rt := stdTestRuntime(t)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			got := b.Run(rt, Test)
			want := b.RefChecksum(Test)
			if got != want {
				t.Fatalf("%s on std: checksum %d, reference %d", b.Name, got, want)
			}
		})
	}
}

// TestChecksumsSingleWorker guards against concurrency being required
// for correctness: one worker must compute the same results.
func TestChecksumsSingleWorker(t *testing.T) {
	rt := hpxTestRuntime(t, 1)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if got, want := b.Run(rt, Test), b.RefChecksum(Test); got != want {
				t.Fatalf("%s on 1 worker: checksum %d, reference %d", b.Name, got, want)
			}
		})
	}
}

// TestTaskGraphsSimulate runs every benchmark's skeleton through the
// simulator at 1 and 20 cores and validates the structural invariants.
func TestTaskGraphsSimulate(t *testing.T) {
	m := simMachine()
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.TaskGraph(Test)
			st := g.Stats()
			if st.Tasks < 2 {
				t.Fatalf("graph has %d tasks", st.Tasks)
			}
			if st.WorkNs <= 0 {
				t.Fatalf("graph has no work")
			}
			r1, err := sim.Run(sim.Config{Machine: m, Cores: 1, Mode: sim.HPX}, g)
			if err != nil {
				t.Fatalf("1-core sim: %v", err)
			}
			r20, err := sim.Run(sim.Config{Machine: m, Cores: 20, Mode: sim.HPX}, g)
			if err != nil {
				t.Fatalf("20-core sim: %v", err)
			}
			if r1.Tasks != st.Tasks || r20.Tasks != st.Tasks {
				t.Fatalf("simulated tasks %d/%d != graph %d", r1.Tasks, r20.Tasks, st.Tasks)
			}
			// Very fine-grained benchmarks may degrade at 20 cores (the
			// paper's own observation); everything else must speed up.
			if b.Granularity == "very fine" || b.Granularity == "variable/very fine" {
				if r20.MakespanNs > 3*r1.MakespanNs {
					t.Fatalf("20 cores degraded beyond model expectations: %d vs %d", r20.MakespanNs, r1.MakespanNs)
				}
			} else if r20.MakespanNs > r1.MakespanNs {
				t.Fatalf("20 cores slower than 1: %d vs %d", r20.MakespanNs, r1.MakespanNs)
			}
		})
	}
}

// TestGraphGrainMatchesTableV checks each skeleton's average task
// duration at one core is within 3x of the paper's Table V value —
// variable-grain benchmarks legitimately deviate from the leaf grain.
func TestGraphGrainMatchesTableV(t *testing.T) {
	m := simMachine()
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.TaskGraph(Small)
			r, err := sim.Run(sim.Config{Machine: m, Cores: 1, Mode: sim.HPX}, g)
			if err != nil {
				t.Fatal(err)
			}
			gotUs := r.AvgTaskNs() / 1000
			ratio := gotUs / b.PaperTaskUs
			if ratio < 0.3 || ratio > 3.5 {
				t.Fatalf("avg task %.2f µs vs Table V %.2f µs (ratio %.2f)",
					gotUs, b.PaperTaskUs, ratio)
			}
		})
	}
}

func simMachine() machineType { return realIvyBridge() }

func TestHPXBeatsStdAtScaleOnSim(t *testing.T) {
	// For every very fine-grained benchmark, the simulated 10-core std
	// run must be much slower than HPX or fail — the paper's central
	// comparison.
	m := realIvyBridge()
	for _, b := range All() {
		if b.Granularity != "very fine" {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.TaskGraph(Small)
			rh, err := sim.Run(sim.Config{Machine: m, Cores: 10, Mode: sim.HPX}, g)
			if err != nil || rh.Failed {
				t.Fatalf("HPX sim failed: %+v %v", rh.FailureReason, err)
			}
			rs, err := sim.Run(sim.Config{Machine: m, Cores: 10, Mode: sim.Std}, g)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Failed {
				return // thread exhaustion: matches the paper's "fail"
			}
			if ratio := float64(rs.MakespanNs) / float64(rh.MakespanNs); ratio < 1.5 {
				t.Fatalf("std/hpx ratio %.2f for %s; want >= 1.5", ratio, b.Name)
			}
		})
	}
}

// TestPaperTaskCounts pins the graph generators to the paper's Table I
// task counts where the paper states them.
func TestPaperTaskCounts(t *testing.T) {
	cases := []struct {
		name     string
		lo, hi   int64 // acceptance band around the paper's count
		paperVal string
	}{
		{"alignment", 4900, 5000, "4,950"},
		{"sparselu", 10000, 12000, "11,099"},
		{"round", 500, 530, "512"},
	}
	for _, c := range cases {
		b, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := b.TaskGraph(Paper).Stats().Tasks
		if got < c.lo || got > c.hi {
			t.Errorf("%s paper-size tasks = %d, paper reports %s", c.name, got, c.paperVal)
		}
	}
}
