//go:build !race

package inncabs

const raceEnabled = false
