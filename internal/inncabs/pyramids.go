package inncabs

import "repro/internal/sim"

// Pyramids: time-stepped 1-D three-point stencil computed by recursive
// pyramidal (cache-oblivious trapezoid) decomposition. The space range
// splits into two concurrent tasks per level; blocks at the base compute
// a time slab sequentially; the seam pyramids between blocks run after
// their neighbours join. Recursive balanced, no synchronization, the
// suite's moderate-grain member (Table V: 246 µs). In the paper this is
// the only benchmark where the std version beats HPX at low core counts
// (kernel threads amortise over the 250 µs grain) while HPX reaches the
// same minimum at 20 cores with a higher speedup (13 vs 8).

type pyramidsParams struct {
	n     int // grid points
	steps int // time steps
	base  int // base block width (grain control)
}

func pyramidsSize(s Size) pyramidsParams {
	switch s {
	case Test:
		return pyramidsParams{n: 1 << 10, steps: 32, base: 128}
	case Small:
		return pyramidsParams{n: 1 << 13, steps: 64, base: 256}
	case Medium:
		return pyramidsParams{n: 1 << 15, steps: 128, base: 512}
	default: // Paper: n=9999-scale grid, scaled up here for task count
		return pyramidsParams{n: 1 << 16, steps: 128, base: 512}
	}
}

func pyramidsInput(n int) []float64 {
	prng := newPRNG(0x9812)
	a := make([]float64, n)
	for i := range a {
		a[i] = prng.float64n()
	}
	return a
}

// stencilStep advances points [lo, hi) of src one time step into dst
// with the three-point average kernel (periodic boundary).
func stencilStep(dst, src []float64, lo, hi int) {
	n := len(src)
	for i := lo; i < hi; i++ {
		left := src[(i-1+n)%n]
		right := src[(i+1)%n]
		dst[i] = 0.25*left + 0.5*src[i] + 0.25*right
	}
}

// pyramidsTask advances the whole grid `steps` time steps, recursively
// halving the space range until it is at most base wide. Within one
// slab, the two halves run concurrently for the interior pyramid and the
// seams are repaired sequentially after the join — expressed here as:
// recurse in space; at the base, step the block slab-sequentially.
//
// For simplicity and verifiability the decomposition synchronises every
// slab of `base/2` time steps (the classic blocked-pyramid scheme): each
// slab forks one task per base block, every task computes its block's
// full slab using the previous slab's halo, and the join provides the
// next slab's halo.
func pyramidsTask(rt Runtime, a []float64, steps, base int) []float64 {
	n := len(a)
	slab := base / 2
	if slab < 1 {
		slab = 1
	}
	cur := a
	next := make([]float64, n)
	for t := 0; t < steps; t += slab {
		h := slab
		if t+h > steps {
			h = steps - t
		}
		// One task per block: each block computes h sub-steps over its
		// range plus shrinking halos, writing the final sub-step into
		// next. Blocks copy their halo region privately, so they are
		// independent within the slab.
		var futures []Future
		for lo := 0; lo < n; lo += base {
			hi := lo + base
			if hi > n {
				hi = n
			}
			lo, hi := lo, hi
			src := cur
			dst := next
			futures = append(futures, rt.Async(func() any {
				pyramidBlock(dst, src, lo, hi, h)
				return nil
			}))
		}
		for _, f := range futures {
			f.Get()
		}
		cur, next = next, cur
	}
	return cur
}

// pyramidBlock computes h sub-steps of the block [lo, hi) into dst,
// using a private halo-extended buffer of width hi-lo+2h.
func pyramidBlock(dst, src []float64, lo, hi, h int) {
	n := len(src)
	width := hi - lo + 2*h
	buf := make([]float64, width)
	tmp := make([]float64, width)
	for i := 0; i < width; i++ {
		buf[i] = src[((lo-h+i)%n+n)%n]
	}
	for s := 0; s < h; s++ {
		// After s steps, indices [s+1, width-s-1) are valid.
		stencilStep(tmp, buf, 1, width-1)
		// Periodic wrap inside the private buffer is wrong at the edges,
		// but those entries are outside the valid shrinking window and
		// never read below.
		buf, tmp = tmp, buf
	}
	copy(dst[lo:hi], buf[h:h+hi-lo])
}

func pyramidsChecksum(a []float64) int64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return int64(s * 1e6)
}

func pyramidsRun(rt Runtime, size Size) int64 {
	p := pyramidsSize(size)
	return pyramidsChecksum(pyramidsTask(rt, pyramidsInput(p.n), p.steps, p.base))
}

func pyramidsRef(size Size) int64 {
	p := pyramidsSize(size)
	cur := pyramidsInput(p.n)
	next := make([]float64, p.n)
	for t := 0; t < p.steps; t++ {
		stencilStep(next, cur, 0, p.n)
		cur, next = next, cur
	}
	return pyramidsChecksum(cur)
}

// pyramidsGraph: a sequence of slabs, each fanning out one 246 µs block
// task per base block, joined per slab.
func pyramidsGraph(size Size) *sim.Graph {
	p := pyramidsSize(Paper)
	blocks := p.n / p.base // 128
	slabs := (p.steps + p.base/2 - 1) / (p.base / 2)
	switch size {
	case Test:
		blocks, slabs = 8, 2
	case Small:
		blocks, slabs = 32, 4
	case Medium:
		blocks, slabs = 64, 8
	default:
		slabs = 40 // lengthen the paper run to the figure's seconds scale
	}
	work := grainNs(246)
	bytes := taskBytes(pyramidsIntensity, work)
	root := &sim.Node{Serial: true} // slabs synchronise on a join each
	for s := 0; s < slabs; s++ {
		stage := &sim.Node{}
		for b := 0; b < blocks; b++ {
			stage.Children = append(stage.Children, sim.Leaf(work, bytes))
		}
		root.Children = append(root.Children, stage)
	}
	return &sim.Graph{Label: "pyramids", Root: root}
}

// pyramidsIntensity: stencil slabs stream the grid: ~3 GB/s per core, so
// the socket's 40 GB/s saturates past the socket boundary — Figure 14's bandwidth
// peak at the socket boundary.
const pyramidsIntensity = 3e9

var pyramidsBenchmark = register(&Benchmark{
	Name:            "pyramids",
	Class:           "Recursive Balanced",
	Sync:            "none",
	Granularity:     "moderate",
	PaperTaskUs:     246,
	PaperStdScaling: "to 20",
	PaperHPXScaling: "to 20",
	MemIntensity:    pyramidsIntensity,
	Run:             pyramidsRun,
	RefChecksum:     pyramidsRef,
	TaskGraph:       pyramidsGraph,
})
