package inncabs

import "testing"

func TestBuildVillagesShape(t *testing.T) {
	p := healthParams{levels: 3, branching: 4, steps: 1}
	root := buildVillages(p)
	count := 0
	var walk func(v *village, level int)
	walk = func(v *village, level int) {
		count++
		if v.level != level {
			t.Fatalf("village %d at level %d, want %d", v.id, v.level, level)
		}
		wantKids := p.branching
		if level == p.levels {
			wantKids = 0
		}
		if len(v.children) != wantKids {
			t.Fatalf("village %d has %d children, want %d", v.id, len(v.children), wantKids)
		}
		for _, c := range v.children {
			walk(c, level+1)
		}
	}
	walk(root, 1)
	if count != 1+4+16 {
		t.Fatalf("village count = %d", count)
	}
}

func TestHealthParallelEqualsSequentialPerStep(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	// Interleave: run the same steps on two trees, one parallel, one
	// sequential, and compare the full patient state each step.
	p := healthParams{levels: 3, branching: 3, steps: 5}
	a := buildVillages(p)
	b := buildVillages(p)
	for step := 0; step < p.steps; step++ {
		healthStep(rt, a, step)
		healthStep(sequentialRuntime{}, b, step)
	}
	var compare func(x, y *village)
	compare = func(x, y *village) {
		if x.treated != y.treated || len(x.waiting) != len(y.waiting) {
			t.Fatalf("village %d diverged: treated %d/%d waiting %d/%d",
				x.id, x.treated, y.treated, len(x.waiting), len(y.waiting))
		}
		for i := range x.children {
			compare(x.children[i], y.children[i])
		}
	}
	compare(a, b)
}

func TestHealthTreatsPatients(t *testing.T) {
	if healthRef(Test) == 0 {
		t.Fatal("no patients treated in the test workload")
	}
}

func TestUTSDeterministicCount(t *testing.T) {
	p := utsSize(Test)
	a := utsCountSeq(p, 0x07357357, 0)
	b := utsCountSeq(p, 0x07357357, 0)
	if a != b || a < int64(p.rootChildren) {
		t.Fatalf("uts counts: %d, %d", a, b)
	}
}

func TestUTSTaskMatchesSeqAtAnyDepth(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	p := utsSize(Test)
	want := utsCountSeq(p, 0x07357357, 0)
	for _, seqDepth := range []int{0, 2, 4, 100} {
		q := p
		q.seqDepth = seqDepth
		if got := utsCountTask(rt, q, 0x07357357, 0); got != want {
			t.Errorf("seqDepth=%d: count %d want %d", seqDepth, got, want)
		}
	}
}

func TestUTSChildrenRespectDepthLimit(t *testing.T) {
	p := utsSize(Test)
	if kids := utsChildren(p, 1, p.maxDepth); kids != nil {
		t.Fatalf("children beyond max depth: %v", kids)
	}
	if got := len(utsChildren(p, 1, 0)); got != p.rootChildren {
		t.Fatalf("root children = %d want %d", got, p.rootChildren)
	}
	for _, kids := range [][]uint64{utsChildren(p, 99, 3), utsChildren(p, 7, 5)} {
		if len(kids) > p.slots {
			t.Fatalf("interior node exceeded %d slots: %d", p.slots, len(kids))
		}
	}
}

func TestUTSGraphMatchesImplicitTree(t *testing.T) {
	p := utsSize(Test)
	g := utsGraph(Test)
	if got, want := g.Stats().Tasks, utsCountSeq(p, 0x07357357, 0); got != want {
		t.Fatalf("graph tasks %d != implicit tree %d", got, want)
	}
}
