package inncabs

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertionSort(t *testing.T) {
	a := []int32{5, 2, 9, 1, 5, 6}
	insertionSort(a)
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatalf("not sorted: %v", a)
	}
	insertionSort(nil)        // must not panic
	insertionSort([]int32{})  // must not panic
	insertionSort([]int32{1}) // single element
}

func TestMergeRuns(t *testing.T) {
	dst := make([]int32, 7)
	mergeRuns(dst, []int32{1, 4, 9}, []int32{2, 3, 5, 10})
	want := []int32{1, 2, 3, 4, 5, 9, 10}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("merge = %v", dst)
	}
	// One side empty.
	dst = make([]int32, 3)
	mergeRuns(dst, nil, []int32{1, 2, 3})
	if !reflect.DeepEqual(dst, []int32{1, 2, 3}) {
		t.Fatalf("merge with empty left = %v", dst)
	}
}

func TestMergeSortTaskSortsQuick(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a := make([]int32, r.Intn(5000))
			for i := range a {
				a[i] = int32(r.Uint32())
			}
			args[0] = reflect.ValueOf(a)
		},
	}
	prop := func(a []int32) bool {
		want := append([]int32(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		buf := make([]int32, len(a))
		mergeSortTask(rt, a, buf, 64)
		return reflect.DeepEqual(a, want)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSortChecksumOrderSensitive(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{2, 1, 3, 4}
	if sortChecksum(a) == sortChecksum(b) {
		t.Fatal("checksum blind to element order")
	}
}

func TestSortRefMatchesStdSort(t *testing.T) {
	p := sortSize(Test)
	a := sortInput(p.n)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	if sortChecksum(a) != sortRef(Test) {
		t.Fatal("sortRef disagrees with sort.Slice")
	}
}
