package inncabs

// Tests for the two branch-and-bound benchmarks (floorplan, qap) and
// the co-dependent pair (intersim, round).

import (
	"sync/atomic"
	"testing"
)

func TestFloorplanStateFitsAndPlace(t *testing.T) {
	p := floorplanParams{gridW: 8, gridH: 8, cells: 1}
	s := newFloorplanState(p)
	if !s.fits(0, 0, cellShape{3, 2}) {
		t.Fatal("empty grid rejects a fitting shape")
	}
	if s.fits(6, 0, cellShape{3, 2}) {
		t.Fatal("shape beyond the right edge accepted")
	}
	if s.fits(0, 7, cellShape{3, 2}) {
		t.Fatal("shape beyond the bottom edge accepted")
	}
	s.place(0, 0, cellShape{3, 2})
	if s.maxX != 3 || s.maxY != 2 || s.bound() != 5 {
		t.Fatalf("bounding box = %dx%d", s.maxX, s.maxY)
	}
	if s.fits(2, 1, cellShape{2, 2}) {
		t.Fatal("overlap accepted")
	}
	if !s.fits(3, 0, cellShape{2, 2}) {
		t.Fatal("adjacent placement rejected")
	}
}

func TestFloorplanCloneIsDeep(t *testing.T) {
	p := floorplanParams{gridW: 8, gridH: 8}
	s := newFloorplanState(p)
	s.place(0, 0, cellShape{2, 2})
	c := s.clone()
	c.place(2, 0, cellShape{2, 2})
	if s.maxX != 2 || s.fits(2, 0, cellShape{1, 1}) == false {
		t.Fatal("clone mutated its parent")
	}
}

func TestFloorplanAnchorsBounded(t *testing.T) {
	p := floorplanParams{gridW: 10, gridH: 10}
	s := newFloorplanState(p)
	if got := s.anchors(); len(got) != 1 || got[0] != [2]int{0, 0} {
		t.Fatalf("empty-grid anchors = %v", got)
	}
	s.place(0, 0, cellShape{4, 3})
	for _, a := range s.anchors() {
		if a[0] > s.maxX || a[1] > s.maxY {
			t.Fatalf("anchor %v outside the box frontier", a)
		}
	}
}

func TestFloorplanOptimumIndependentOfParallelism(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	p := floorplanSize(Test)
	cells := floorplanCells(p)
	results := map[int]int64{}
	for _, depth := range []int{0, 1, 3} {
		var best atomic.Int64
		best.Store(int64(p.gridW + p.gridH + 1))
		floorplanSearch(rt, cells, newFloorplanState(p), 0, &best, depth)
		results[depth] = best.Load()
	}
	if results[0] != results[1] || results[1] != results[3] {
		t.Fatalf("optimum depends on parallel depth: %v", results)
	}
	if results[0] >= int64(p.gridW+p.gridH+1) {
		t.Fatal("no placement found")
	}
}

// qapBrute exhaustively evaluates all permutations for small n.
func qapBrute(flow, dist [][]int32) int64 {
	n := len(flow)
	perm := make([]int8, n)
	used := make([]bool, n)
	best := int64(1) << 40
	var rec func(k int, cost int64)
	rec = func(k int, cost int64) {
		if k == n {
			if cost < best {
				best = cost
			}
			return
		}
		for loc := 0; loc < n; loc++ {
			if used[loc] {
				continue
			}
			add := qapPartialCost(flow, dist, perm, k, int8(loc))
			used[loc] = true
			perm[k] = int8(loc)
			rec(k+1, cost+add)
			used[loc] = false
		}
	}
	rec(0, 0)
	return best
}

func TestQAPMatchesBruteForce(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	flow, dist := qapInput(7)
	want := qapBrute(flow, dist)
	var best atomic.Int64
	best.Store(1 << 40)
	qapSearch(rt, flow, dist, make([]int8, 7), 0, 0, 0, &best, 2)
	if got := best.Load(); got != want {
		t.Fatalf("B&B optimum %d != brute force %d", got, want)
	}
}

func TestQAPCostSymmetry(t *testing.T) {
	flow, dist := qapInput(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if flow[i][j] != flow[j][i] || dist[i][j] != dist[j][i] {
				t.Fatal("input matrices not symmetric")
			}
		}
	}
	if flow[2][2] != 0 || dist[3][3] != 0 {
		t.Fatal("diagonal not zero")
	}
}

func TestIntersimConservation(t *testing.T) {
	// Messages either get delivered or stay in flight: nothing is lost.
	// With TTL bounded, running long enough delivers everything.
	p := intersimParams{switches: 4, cycles: 64, seedMsgs: 3, ttl: 10}
	_ = p
	// Count deliveries through the checksum decomposition: checksum =
	// delivered*1000003 + hops; after ttl cycles all messages are gone.
	rt := hpxTestRuntime(t, 2)
	sum := intersimRunOn(rt, Test)
	delivered := sum / 1000003
	pTest := intersimSize(Test)
	total := int64(pTest.switches * pTest.seedMsgs)
	if delivered != total {
		t.Fatalf("delivered %d of %d seeded messages", delivered, total)
	}
}

func TestIntersimMutexesUsed(t *testing.T) {
	// On the HPX runtime the switches use instrumented mutexes; verify
	// they are actually exercised.
	rt := hpxTestRuntime(t, 2)
	m := rt.NewMutex()
	m.Lock()
	m.Unlock()
	type counted interface{ Acquisitions() int64 }
	c, ok := m.(counted)
	if !ok {
		t.Fatal("HPX runtime does not hand out counted mutexes")
	}
	if c.Acquisitions() != 1 {
		t.Fatalf("acquisitions = %d", c.Acquisitions())
	}
}

func TestRoundTokenConservation(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	p := roundSize(Test)
	// Total tokens are conserved: transfers only move them around the
	// ring. Initial total = sum(i*100).
	var initial int64
	for i := 0; i < p.players; i++ {
		initial += int64(i * 100)
	}
	players := make([]*player, p.players)
	for i := range players {
		players[i] = &player{mu: rt.NewMutex(), tokens: int64(i * 100)}
	}
	for r := 0; r < p.rounds; r++ {
		var futures []Future
		for i := range players {
			i, r := i, r
			futures = append(futures, rt.Async(func() any {
				amount := int64(roundKernel(uint64(i)*2654435761+uint64(r), 100) % 97)
				a, b := players[i], players[(i+1)%len(players)]
				first, second := a, b
				if (i+1)%len(players) < i {
					first, second = b, a
				}
				first.mu.Lock()
				second.mu.Lock()
				a.tokens -= amount
				b.tokens += amount
				second.mu.Unlock()
				first.mu.Unlock()
				return nil
			}))
		}
		for _, f := range futures {
			f.Get()
		}
	}
	var final int64
	for _, pl := range players {
		final += pl.tokens
	}
	if final != initial {
		t.Fatalf("tokens not conserved: %d -> %d", initial, final)
	}
}

func TestRoundKernelDeterministic(t *testing.T) {
	if roundKernel(42, 1000) != roundKernel(42, 1000) {
		t.Fatal("kernel not deterministic")
	}
	if roundKernel(42, 1000) == roundKernel(43, 1000) {
		t.Fatal("kernel ignores its seed")
	}
}
