package inncabs

import "repro/internal/machine"

// machineType aliases the platform model for test helpers.
type machineType = machine.Machine

func realIvyBridge() machine.Machine { return machine.IvyBridge() }
