package inncabs

import "testing"

func TestPRNGDeterministic(t *testing.T) {
	a, b := newPRNG(7), newPRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newPRNG(8)
	same := 0
	a = newPRNG(7)
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestPRNGRanges(t *testing.T) {
	p := newPRNG(1)
	for i := 0; i < 10000; i++ {
		if v := p.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d", v)
		}
		if f := p.float64n(); f < 0 || f >= 1 {
			t.Fatalf("float64n = %v", f)
		}
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit changes roughly half the output bits.
	base := hash64(0x1234)
	flipped := hash64(0x1235)
	diff := base ^ flipped
	ones := 0
	for ; diff != 0; diff &= diff - 1 {
		ones++
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("avalanche bits = %d", ones)
	}
}

func TestGraphHelpers(t *testing.T) {
	g := fanoutGraph("x", 5, 1000, 1e9)
	if g.Stats().Tasks != 6 {
		t.Fatalf("fanout tasks = %d", g.Stats().Tasks)
	}
	bt := binaryTreeGraph("y", 3, 100, 10, 0)
	if bt.Stats().Tasks != 15 {
		t.Fatalf("binary tree tasks = %d", bt.Stats().Tasks)
	}
	ut := unbalancedTreeGraph("z", 1, 50, 3, 4, 100, 0)
	st := ut.Stats()
	if st.Tasks < 3 || st.Tasks > 50+1 {
		t.Fatalf("unbalanced tree tasks = %d", st.Tasks)
	}
}
