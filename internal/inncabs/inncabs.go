// Package inncabs ports the Innsbruck C++11 Async Benchmark Suite
// (Thoman, Gschwandtner, Fahringer) — the fourteen benchmarks the paper
// runs on both std::async and HPX. Every benchmark is implemented twice:
//
//   - Run: a real, verifiable computation against the Runtime
//     abstraction, executable on the lightweight runtime (taskrt) and
//     the thread-per-task baseline (stdrt). The port mirrors the paper's
//     Table II: the only difference between the two versions is which
//     runtime's async the calls resolve to.
//
//   - TaskGraph: a fork/join skeleton with the same spawn structure and
//     calibrated task granularity (Table V) and memory intensity, fed to
//     the discrete-event simulator (package sim) to regenerate the
//     paper's strong-scaling figures on the modelled 20-core node.
//
// Benchmarks are registered in All in the paper's Table V order.
package inncabs

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

// Future is the type-erased future the benchmarks program against.
type Future interface {
	// Get waits for and returns the task's result.
	Get() any
}

// Runtime abstracts the runtime under test. Both adapters satisfy it.
type Runtime interface {
	// Async launches fn asynchronously and returns its future.
	Async(fn func() any) Future
	// NewMutex returns the runtime's mutex type (hpx::mutex vs
	// std::mutex in Table II) for the co-dependent benchmarks.
	NewMutex() sync.Locker
	// Name identifies the runtime in reports ("HPX", "C++11 Std").
	Name() string
}

// CtxRuntime is implemented by runtimes whose tasks can join a
// cancellation scope. The cancellable kernels (RunCtx) use it when
// available and degrade to spawn-time context checks otherwise.
type CtxRuntime interface {
	Runtime
	// AsyncCtx launches fn with ctx as its cancellation scope.
	AsyncCtx(ctx context.Context, fn func() any) Future
}

// BatchRuntime is implemented by runtimes that can launch the children
// of a wide node as one scheduler transaction (one queue publish, one
// wakeup) instead of one per child. grainNs is the caller's estimate of
// one child's body duration in nanoseconds — Table V's measured grain —
// feeding the runtime's adaptive-inline policy; 0 means unknown.
type BatchRuntime interface {
	Runtime
	// AsyncBatch launches every fn asynchronously and returns their
	// futures, in order.
	AsyncBatch(grainNs int64, fns []func() any) []Future
}

// asyncAll launches every fn, as one batch transaction when the runtime
// supports it and one Async per fn otherwise. The fns slice is consumed
// synchronously: the caller may reuse it after asyncAll returns.
func asyncAll(rt Runtime, grainNs int64, fns []func() any) []Future {
	if b, ok := rt.(BatchRuntime); ok && len(fns) > 1 {
		return b.AsyncBatch(grainNs, fns)
	}
	out := make([]Future, len(fns))
	for i, fn := range fns {
		out[i] = rt.Async(fn)
	}
	return out
}

// errFuture is implemented by futures that can report how the task
// completed without re-panicking (taskrt's Future does).
type errFuture interface {
	GetErr() (any, error)
}

// asyncCtx launches fn under ctx on rt, using native cancellation
// support when the runtime has it. Without native support the context
// is only consulted at spawn time.
func asyncCtx(ctx context.Context, rt Runtime, fn func() any) Future {
	if c, ok := rt.(CtxRuntime); ok {
		return c.AsyncCtx(ctx, fn)
	}
	if err := ctx.Err(); err != nil {
		return cancelledFuture{err}
	}
	return rt.Async(fn)
}

// getErr waits for a future and separates value from failure: cancelled
// or panicked tasks surface as an error instead of a re-panic.
func getErr(f Future) (any, error) {
	if e, ok := f.(errFuture); ok {
		return e.GetErr()
	}
	return f.Get(), nil
}

// cancelledFuture is the dead-on-arrival future for runtimes without
// native cancellation.
type cancelledFuture struct{ err error }

func (f cancelledFuture) Get() any             { return nil }
func (f cancelledFuture) GetErr() (any, error) { return nil, f.err }

// ctxProbe amortizes ctx.Err checks inside tight sequential kernels:
// the context is consulted every 256 calls and the result latches.
type ctxProbe struct {
	ctx  context.Context
	n    uint32
	dead bool
}

func (p *ctxProbe) cancelled() bool {
	if p.dead {
		return true
	}
	p.n++
	if p.n&255 == 0 && p.ctx.Err() != nil {
		p.dead = true
	}
	return p.dead
}

// The adapter methods below wrap every benchmark spawn, so without
// help each trace would attribute all tasks to this file. Registering
// them as site-skip prefixes makes spawn-site resolution step over the
// wrappers to the benchmark kernel's call site (fib.go:44, sort.go:79,
// ...). The package prefix is computed from a live symbol so the
// registration survives module renames; benchmark kernels in this same
// package are NOT skipped because the skip list carries full function
// names, not the bare package path.
func init() {
	pc, _, _, ok := runtime.Caller(0)
	if !ok {
		return
	}
	name := runtime.FuncForPC(pc).Name() // "repro/internal/inncabs.init..."
	i := strings.LastIndexByte(name, '/')
	if i < 0 {
		return
	}
	j := strings.IndexByte(name[i:], '.')
	if j < 0 {
		return
	}
	pkg := name[:i+j+1]
	taskrt.RegisterSiteSkip(pkg + "(*HPXRuntime).Async")
	taskrt.RegisterSiteSkip(pkg + "(*HPXRuntime).AsyncCtx")
	taskrt.RegisterSiteSkip(pkg + "(*HPXRuntime).AsyncBatch")
	taskrt.RegisterSiteSkip(pkg + "asyncCtx")
	taskrt.RegisterSiteSkip(pkg + "asyncAll")
}

// HPXRuntime adapts taskrt to the benchmark interface.
type HPXRuntime struct {
	// RT is the underlying lightweight runtime.
	RT *taskrt.Runtime
	// Policy is the launch policy (the paper reports async).
	Policy taskrt.Policy
}

// NewHPX wraps a taskrt runtime with the async policy.
func NewHPX(rt *taskrt.Runtime) *HPXRuntime {
	return &HPXRuntime{RT: rt, Policy: taskrt.Async}
}

// Async implements Runtime.
func (h *HPXRuntime) Async(fn func() any) Future {
	return taskrt.Spawn(h.RT, h.Policy, fn)
}

// AsyncCtx implements CtxRuntime: the task joins ctx's cancellation
// tree, so tasks still queued when ctx dies are dropped at dispatch.
func (h *HPXRuntime) AsyncCtx(ctx context.Context, fn func() any) Future {
	return taskrt.SpawnCtx(ctx, h.RT, h.Policy, fn)
}

// AsyncBatch implements BatchRuntime: an Async-policy batch is one
// scheduler transaction (one deque-window publish, one notify); other
// policies keep their per-task launch semantics.
func (h *HPXRuntime) AsyncBatch(grainNs int64, fns []func() any) []Future {
	var fs []*taskrt.Future[any]
	if h.Policy == taskrt.Async || h.Policy == taskrt.Optional {
		fs = taskrt.AsyncBatchGrain(h.RT, grainNs, fns)
	} else {
		fs = taskrt.SpawnBatch(h.RT, h.Policy, fns)
	}
	out := make([]Future, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// NewMutex implements Runtime with the instrumented task-runtime mutex.
func (h *HPXRuntime) NewMutex() sync.Locker { return &taskrt.Mutex{} }

// Name implements Runtime.
func (h *HPXRuntime) Name() string { return "HPX" }

// StdRuntime adapts stdrt (thread per task) to the benchmark interface.
type StdRuntime struct {
	// RT is the underlying thread-per-task runtime.
	RT *stdrt.Runtime
}

// NewStd wraps a stdrt runtime.
func NewStd(rt *stdrt.Runtime) *StdRuntime { return &StdRuntime{RT: rt} }

// Async implements Runtime.
func (s *StdRuntime) Async(fn func() any) Future {
	return stdrt.Spawn(s.RT, fn)
}

// NewMutex implements Runtime with a plain OS-backed mutex.
func (s *StdRuntime) NewMutex() sync.Locker { return &sync.Mutex{} }

// Name implements Runtime.
func (s *StdRuntime) Name() string { return "C++11 Std" }

// Size selects a workload preset. Test sizes keep unit tests fast; Paper
// approaches the paper's input sets (scaled where the original would not
// fit this reproduction's budget — each benchmark's doc comment states
// the scaling).
type Size int

const (
	// Test is a seconds-scale CI workload.
	Test Size = iota
	// Small is a quick interactive workload.
	Small
	// Medium approaches the paper's task counts.
	Medium
	// Paper matches the paper's input sets (or its documented scaling).
	Paper
	// Huge exceeds the paper's inputs; minutes-scale spawn storms used
	// to exercise cancellation and overload shedding. Benchmarks without
	// an explicit Huge preset fall back to their Paper parameters.
	Huge
)

// String names the size.
func (s Size) String() string {
	switch s {
	case Test:
		return "test"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	case Huge:
		return "huge"
	default:
		return fmt.Sprintf("size(%d)", int(s))
	}
}

// ParseSize converts a size name.
func ParseSize(s string) (Size, error) {
	switch s {
	case "test":
		return Test, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	case "huge":
		return Huge, nil
	default:
		return Test, fmt.Errorf("inncabs: unknown size %q", s)
	}
}

// Benchmark describes one suite member.
type Benchmark struct {
	// Name is the lower-case benchmark name ("alignment", "fft", ...).
	Name string
	// Class is the structural class from Table V ("Loop Like",
	// "Recursive Balanced", "Recursive Unbalanced", "Co-dependent").
	Class string
	// Sync describes the synchronization used ("none", "atomic
	// pruning", "mult. mutex/task", "2 mutex/task").
	Sync string
	// Granularity is the paper's classification of the measured task
	// duration ("coarse", "moderate", "fine", "very fine",
	// "variable/fine", "variable/very fine").
	Granularity string
	// PaperTaskUs is Table V's measured average task duration on one
	// core, microseconds.
	PaperTaskUs float64
	// PaperStdScaling and PaperHPXScaling are Table V's scaling columns
	// ("to 20", "to 10", "fail", "no scaling", ...).
	PaperStdScaling string
	PaperHPXScaling string
	// MemIntensity is the modelled off-core traffic intensity of one
	// task, in bytes per second of task execution on one core. It
	// drives the bandwidth figures (13, 14).
	MemIntensity float64

	// Run executes the real benchmark on rt and returns a checksum that
	// tests verify against RefChecksum.
	Run func(rt Runtime, size Size) int64
	// RunCtx, when set, is the cancellable variant: it observes ctx
	// cooperatively and returns early with a non-nil error once the
	// context dies (the partial checksum is meaningless then). Only the
	// long-running kernels implement it.
	RunCtx func(ctx context.Context, rt Runtime, size Size) (int64, error)
	// RefChecksum returns the expected checksum for a size (computed by
	// a sequential reference inside the package).
	RefChecksum func(size Size) int64
	// TaskGraph builds the simulator skeleton for a size.
	TaskGraph func(size Size) *sim.Graph
}

// registry holds the suite members (population order is file order).
var registry []*Benchmark

func register(b *Benchmark) *Benchmark {
	registry = append(registry, b)
	return b
}

// tableVOrder is the paper's Table V presentation order.
var tableVOrder = []string{
	"alignment", "health", "sparselu", // Loop Like
	"fft", "fib", "pyramids", "sort", "strassen", // Recursive Balanced
	"floorplan", "nqueens", "qap", "uts", // Recursive Unbalanced
	"intersim", "round", // Co-dependent
}

// All returns the suite in the paper's Table V order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(registry))
	for _, name := range tableVOrder {
		for _, b := range registry {
			if b.Name == name {
				out = append(out, b)
			}
		}
	}
	// Append anything not in the canonical list (future extensions).
	for _, b := range registry {
		found := false
		for _, name := range tableVOrder {
			if b.Name == name {
				found = true
				break
			}
		}
		if !found {
			out = append(out, b)
		}
	}
	return out
}

// Names returns the sorted benchmark names.
func Names() []string {
	ns := make([]string, len(registry))
	for i, b := range registry {
		ns[i] = b.Name
	}
	sort.Strings(ns)
	return ns
}

// ByName finds a benchmark.
func ByName(name string) (*Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("inncabs: unknown benchmark %q (have %v)", name, Names())
}

// grainNs converts a Table V microsecond grain to nanoseconds.
func grainNs(us float64) int64 { return int64(us * 1000) }

// taskBytes returns the off-core bytes one task of the given duration
// generates at the given intensity.
func taskBytes(intensity float64, workNs int64) int64 {
	return int64(intensity * float64(workNs) / 1e9)
}
