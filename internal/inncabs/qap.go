package inncabs

import (
	"sync/atomic"

	"repro/internal/sim"
)

// QAP: quadratic assignment by branch-and-bound. Facilities are
// assigned to locations one level at a time; the cost couples every
// placed pair through flow[i][j] * dist[loc(i)][loc(j)]; a shared atomic
// best prunes with a greedy-completion lower bound. Recursive unbalanced
// with atomic pruning, very fine grain (Table V: 1.00 µs). The paper
// could only run the smallest input — QAP exceeded memory limits
// otherwise — and both runtimes stop scaling early (std to 6, HPX to 4).

type qapParams struct {
	n             int
	parallelDepth int
}

func qapSize(s Size) qapParams {
	switch s {
	case Test:
		return qapParams{n: 7, parallelDepth: 2}
	case Small:
		return qapParams{n: 8, parallelDepth: 2}
	case Medium:
		return qapParams{n: 9, parallelDepth: 3}
	default: // Paper: the smallest bundled instance
		return qapParams{n: 10, parallelDepth: 3}
	}
}

// qapInput builds deterministic flow and distance matrices.
func qapInput(n int) (flow, dist [][]int32) {
	prng := newPRNG(0x0A9)
	flow = make([][]int32, n)
	dist = make([][]int32, n)
	for i := 0; i < n; i++ {
		flow[i] = make([]int32, n)
		dist[i] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := int32(prng.intn(10))
			d := int32(prng.intn(10) + 1)
			flow[i][j], flow[j][i] = f, f
			dist[i][j], dist[j][i] = d, d
		}
	}
	return flow, dist
}

// qapPartialCost returns the added cost of assigning facility k to
// location loc given the existing partial assignment.
func qapPartialCost(flow, dist [][]int32, assign []int8, k int, loc int8) int64 {
	var c int64
	for i := 0; i < k; i++ {
		c += int64(flow[i][k]) * int64(dist[assign[i]][loc])
	}
	return c
}

// qapSearch explores assignments of facility k.. with pruning.
func qapSearch(rt Runtime, flow, dist [][]int32, assign []int8, used uint32, k int, cost int64, best *atomic.Int64, parallelDepth int) {
	n := len(flow)
	if cost >= best.Load() {
		return
	}
	if k == n {
		for {
			cur := best.Load()
			if cost >= cur || best.CompareAndSwap(cur, cost) {
				return
			}
		}
	}
	var futures []Future
	for loc := int8(0); int(loc) < n; loc++ {
		if used&(1<<uint(loc)) != 0 {
			continue
		}
		add := qapPartialCost(flow, dist, assign, k, loc)
		if cost+add >= best.Load() {
			continue
		}
		branch := make([]int8, n)
		copy(branch, assign[:k])
		branch[k] = loc
		nu := used | 1<<uint(loc)
		if k < parallelDepth {
			futures = append(futures, rt.Async(func() any {
				qapSearch(rt, flow, dist, branch, nu, k+1, cost+add, best, parallelDepth)
				return nil
			}))
		} else {
			qapSearch(rt, flow, dist, branch, nu, k+1, cost+add, best, parallelDepth)
		}
	}
	for _, f := range futures {
		f.Get()
	}
}

func qapRunOn(rt Runtime, size Size) int64 {
	p := qapSize(size)
	flow, dist := qapInput(p.n)
	var best atomic.Int64
	best.Store(1 << 40)
	qapSearch(rt, flow, dist, make([]int8, p.n), 0, 0, 0, &best, p.parallelDepth)
	return best.Load()
}

func qapRun(rt Runtime, size Size) int64 { return qapRunOn(rt, size) }

func qapRef(size Size) int64 { return qapRunOn(sequentialRuntime{}, size) }

// qapGraph: pruned permutation tree at the 1 µs grain.
func qapGraph(size Size) *sim.Graph {
	maxNodes := map[Size]int{Test: 400, Small: 2000, Medium: 20000, Paper: 120000}[size]
	return unbalancedTreeGraph("qap", 0x0A9, maxNodes, 10, 6, grainNs(1.00), qapIntensity)
}

// qapIntensity: tiny matrices stay cache resident: ~0.3 GB/s.
const qapIntensity = 0.3e9

var qapBenchmark = register(&Benchmark{
	Name:            "qap",
	Class:           "Recursive Unbalanced",
	Sync:            "atomic pruning",
	Granularity:     "very fine",
	PaperTaskUs:     1.00,
	PaperStdScaling: "to 6",
	PaperHPXScaling: "to 4",
	MemIntensity:    qapIntensity,
	Run:             qapRun,
	RefChecksum:     qapRef,
	TaskGraph:       qapGraph,
})
