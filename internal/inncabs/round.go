package inncabs

import "repro/internal/sim"

// Round: the suite's coarse co-dependent member. Players sit in a ring,
// each holding a token balance behind a mutex. Every round spawns one
// task per player: the task performs a long deterministic computation
// (the ~9.7 ms grain of Table V), then transfers a computed amount to
// its right neighbour, locking both balances in index order — two mutex
// acquisitions per task. Both runtimes scale to 20 cores in the paper;
// Table I counts 512 tasks.

type roundParams struct {
	players int
	rounds  int
	workIts int // iterations of the per-task kernel
}

func roundSize(s Size) roundParams {
	switch s {
	case Test:
		return roundParams{players: 8, rounds: 4, workIts: 20000}
	case Small:
		return roundParams{players: 16, rounds: 8, workIts: 100000}
	case Medium:
		return roundParams{players: 32, rounds: 8, workIts: 400000}
	default: // Paper: 512 tasks total
		return roundParams{players: 64, rounds: 8, workIts: 2000000}
	}
}

// roundKernel is the coarse per-task computation: a deterministic LCG
// walk whose result feeds the transfer amount.
func roundKernel(seed uint64, its int) uint64 {
	x := seed
	for i := 0; i < its; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		x ^= x >> 33
	}
	return x
}

// player is one ring member.
type player struct {
	mu interface {
		Lock()
		Unlock()
	}
	tokens int64
}

func roundRunOn(rt Runtime, size Size) int64 {
	p := roundSize(size)
	players := make([]*player, p.players)
	for i := range players {
		players[i] = &player{mu: rt.NewMutex(), tokens: int64(i * 100)}
	}
	for r := 0; r < p.rounds; r++ {
		var futures []Future
		for i := range players {
			i, r := i, r
			futures = append(futures, rt.Async(func() any {
				amount := int64(roundKernel(uint64(i)*2654435761+uint64(r), p.workIts) % 97)
				a := players[i]
				b := players[(i+1)%len(players)]
				// Lock in index order to stay deadlock free.
				first, second := a, b
				if (i+1)%len(players) < i {
					first, second = b, a
				}
				first.mu.Lock()
				second.mu.Lock()
				a.tokens -= amount
				b.tokens += amount
				second.mu.Unlock()
				first.mu.Unlock()
				return nil
			}))
		}
		for _, f := range futures {
			f.Get()
		}
	}
	// The transfer amounts depend only on (player, round), so the final
	// balances are independent of task interleaving.
	var sum int64
	for i, pl := range players {
		sum += int64(i+1) * pl.tokens
	}
	return sum
}

func roundRun(rt Runtime, size Size) int64 { return roundRunOn(rt, size) }

func roundRef(size Size) int64 { return roundRunOn(sequentialRuntime{}, size) }

// roundGraph: rounds in series, one 9.7 ms task per player per round.
func roundGraph(size Size) *sim.Graph {
	p := roundSize(size)
	work := grainNs(9671)
	bytes := taskBytes(roundIntensity, work)
	root := &sim.Node{Serial: true}
	for r := 0; r < p.rounds; r++ {
		stage := &sim.Node{}
		for i := 0; i < p.players; i++ {
			stage.Children = append(stage.Children, sim.Leaf(work, bytes))
		}
		root.Children = append(root.Children, stage)
	}
	return &sim.Graph{Label: "round", Root: root}
}

// roundIntensity: the LCG kernel is register resident: ~0.1 GB/s.
const roundIntensity = 0.1e9

var roundBenchmark = register(&Benchmark{
	Name:            "round",
	Class:           "Co-dependent",
	Sync:            "2 mutex/task",
	Granularity:     "coarse",
	PaperTaskUs:     9671,
	PaperStdScaling: "to 20",
	PaperHPXScaling: "to 20",
	MemIntensity:    roundIntensity,
	Run:             roundRun,
	RefChecksum:     roundRef,
	TaskGraph:       roundGraph,
})
