package inncabs

import (
	"testing"
)

func TestNeedlemanWunschIdentical(t *testing.T) {
	_, score := alignmentInput(alignmentParams{sequences: 2, length: 8})
	a := []byte{0, 1, 2, 3, 4, 5}
	got := needlemanWunsch(a, a, &score)
	// Identical sequences align along the diagonal: the score is the
	// sum of the diagonal substitution scores.
	var want int32
	for _, c := range a {
		want += score[c][c]
	}
	if got != want {
		t.Fatalf("self-alignment = %d want %d", got, want)
	}
}

func TestNeedlemanWunschSymmetric(t *testing.T) {
	seqs, score := alignmentInput(alignmentParams{sequences: 6, length: 40})
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			ab := needlemanWunsch(seqs[i], seqs[j], &score)
			ba := needlemanWunsch(seqs[j], seqs[i], &score)
			if ab != ba {
				t.Fatalf("asymmetric alignment (%d,%d): %d vs %d", i, j, ab, ba)
			}
		}
	}
}

func TestNeedlemanWunschGapStructure(t *testing.T) {
	_, score := alignmentInput(alignmentParams{sequences: 2, length: 8})
	a := []byte{0, 1, 2, 3}
	b := []byte{0, 1, 2, 3, 4} // one insertion
	withGap := needlemanWunsch(a, b, &score)
	exact := needlemanWunsch(a, a, &score)
	// Aligning against a one-longer sequence can cost at most one gap
	// open (and may also change one substitution).
	if withGap > exact {
		t.Fatalf("longer target scored higher without possible benefit: %d > %d", withGap, exact)
	}
	if exact-withGap > 30 {
		t.Fatalf("single insertion cost %d, more than a gap plus a mismatch", exact-withGap)
	}
}

func TestNeedlemanWunschAgainstQuadraticDP(t *testing.T) {
	// Cross-check the linear-space Gotoh against a full-matrix
	// reference on small random inputs.
	seqs, score := alignmentInput(alignmentParams{sequences: 8, length: 12})
	for i := 0; i+1 < len(seqs); i += 2 {
		got := needlemanWunsch(seqs[i], seqs[i+1], &score)
		want := gotohFullMatrix(seqs[i], seqs[i+1], &score)
		if got != want {
			t.Fatalf("pair %d: linear-space %d != full matrix %d", i, got, want)
		}
	}
}

// gotohFullMatrix is an O(n*m) space reference implementing the same
// transition variant as needlemanWunsch: gaps may open from the best of
// all three states (best[i][j] = max(M, Ix, Iy)), and best is what the
// next match transitions from.
func gotohFullMatrix(a, b []byte, score *[alignAlphabet][alignAlphabet]int32) int32 {
	const (
		gapOpen   = 10
		gapExtend = 1
		negInf    = int32(-1 << 28)
	)
	n, m := len(a), len(b)
	best := make([][]int32, n+1)
	vert := make([][]int32, n+1) // Ix: gap in b
	horz := make([][]int32, n+1) // Iy: gap in a
	for i := range best {
		best[i] = make([]int32, m+1)
		vert[i] = make([]int32, m+1)
		horz[i] = make([]int32, m+1)
	}
	for j := 0; j <= m; j++ {
		vert[0][j] = negInf
		horz[0][j] = negInf
		if j > 0 {
			best[0][j] = -gapOpen - int32(j-1)*gapExtend
		}
	}
	for i := 1; i <= n; i++ {
		best[i][0] = -gapOpen - int32(i-1)*gapExtend
		vert[i][0] = negInf
		horz[i][0] = negInf
		for j := 1; j <= m; j++ {
			vert[i][j] = max32(best[i-1][j]-gapOpen, vert[i-1][j]-gapExtend)
			horz[i][j] = max32(best[i][j-1]-gapOpen, horz[i][j-1]-gapExtend)
			match := best[i-1][j-1] + score[a[i-1]][b[j-1]]
			best[i][j] = max32(match, max32(vert[i][j], horz[i][j]))
		}
	}
	return best[n][m]
}

func TestAlignmentTaskCount(t *testing.T) {
	// Paper: 4950 tasks = all pairs of 100 sequences.
	p := alignmentSize(Paper)
	if got := p.sequences * (p.sequences - 1) / 2; got != 4950 {
		t.Fatalf("paper pair count = %d", got)
	}
	g := alignmentGraph(Paper)
	if got := g.Stats().Tasks; got != 4951 { // + the spawning root
		t.Fatalf("paper graph tasks = %d", got)
	}
}

func TestAlignmentDeterministicInput(t *testing.T) {
	a1, s1 := alignmentInput(alignmentSize(Test))
	a2, s2 := alignmentInput(alignmentSize(Test))
	if s1 != s2 {
		t.Fatal("score matrices differ across runs")
	}
	for i := range a1 {
		if string(a1[i]) != string(a2[i]) {
			t.Fatal("sequences differ across runs")
		}
	}
}
