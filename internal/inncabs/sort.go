package inncabs

import "repro/internal/sim"

// Sort: parallel merge sort over int32 keys, spawning a task per half
// above the sequential cutoff and merging after the join. Recursive
// balanced, no synchronization, variable/fine grain (Table V: 52.1 µs —
// leaves sort cutoff-sized runs, interior tasks merge progressively
// larger ranges). Table I counts 328k tasks for the paper's input.

type sortParams struct {
	n      int
	cutoff int
}

func sortSize(s Size) sortParams {
	switch s {
	case Test:
		return sortParams{n: 1 << 12, cutoff: 256}
	case Small:
		return sortParams{n: 1 << 16, cutoff: 512}
	case Medium:
		return sortParams{n: 1 << 20, cutoff: 2048}
	default: // Paper: 100M ints in the original; scaled to 2^22 here
		return sortParams{n: 1 << 22, cutoff: 2048}
	}
}

func sortInput(n int) []int32 {
	prng := newPRNG(0x5027)
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(prng.next())
	}
	return a
}

// insertionSort is the base-case kernel (the original uses std::sort on
// small ranges; insertion sort keeps the leaf grain comparable).
func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// mergeRuns merges two sorted runs into dst.
func mergeRuns(dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// mergeSortTask sorts a in place, using buf (same length) as merge
// scratch. The two halves sort concurrently; the merge runs after the
// join, so interior tasks grow with their range — the paper's
// "variable" grain.
func mergeSortTask(rt Runtime, a, buf []int32, cutoff int) {
	if len(a) <= cutoff {
		insertionSort(a)
		return
	}
	mid := len(a) / 2
	left := rt.Async(func() any {
		mergeSortTask(rt, a[:mid], buf[:mid], cutoff)
		return nil
	})
	mergeSortTask(rt, a[mid:], buf[mid:], cutoff)
	left.Get()
	copy(buf, a)
	mergeRuns(a, buf[:mid], buf[mid:])
}

func sortChecksum(a []int32) int64 {
	// Order-sensitive checksum: fails if any element is misplaced.
	var h uint64 = 1469598103934665603
	for _, v := range a {
		h = (h ^ uint64(uint32(v))) * 1099511628211
	}
	return int64(h)
}

func sortRun(rt Runtime, size Size) int64 {
	p := sortSize(size)
	a := sortInput(p.n)
	buf := make([]int32, len(a))
	mergeSortTask(rt, a, buf, p.cutoff)
	return sortChecksum(a)
}

func sortRef(size Size) int64 {
	p := sortSize(size)
	a := sortInput(p.n)
	// Sequential bottom-up merge sort reference.
	buf := make([]int32, len(a))
	for width := 1; width < len(a); width *= 2 {
		for lo := 0; lo < len(a); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(a) {
				mid = len(a)
			}
			if hi > len(a) {
				hi = len(a)
			}
			mergeRuns(buf[lo:hi], a[lo:mid], a[mid:hi])
		}
		a, buf = buf, a
	}
	return sortChecksum(a)
}

// sortGraph: binary recursion to the cutoff; leaves sort cutoff elements
// (the 52 µs grain), interior nodes merge their range after the join.
func sortGraph(size Size) *sim.Graph {
	p := sortSize(size)
	depth := 0
	for n := p.n; n > p.cutoff; n /= 2 {
		depth++
	}
	// Leaf grain per Table V; merge work proportional to range size,
	// ~0.8 ns per element merged.
	return binaryTreeGraph("sort", depth, grainNs(52.1), grainNs(52.1)/64, sortIntensity)
}

// sortIntensity: streaming merges are memory-hungry: ~3 GB/s per core.
const sortIntensity = 3e9

var sortBenchmark = register(&Benchmark{
	Name:            "sort",
	Class:           "Recursive Balanced",
	Sync:            "none",
	Granularity:     "variable/fine",
	PaperTaskUs:     52.1,
	PaperStdScaling: "to 10",
	PaperHPXScaling: "to 16",
	MemIntensity:    sortIntensity,
	Run:             sortRun,
	RefChecksum:     sortRef,
	TaskGraph:       sortGraph,
})
