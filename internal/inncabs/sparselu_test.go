package inncabs

import (
	"math"
	"testing"
)

// denseFromBlocks expands a block matrix into a dense one (nil blocks
// become zeros).
func denseFromBlocks(m *blockMatrix) [][]float64 {
	n := m.nb * m.bs
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for bi := 0; bi < m.nb; bi++ {
		for bj := 0; bj < m.nb; bj++ {
			b := m.at(bi, bj)
			if b == nil {
				continue
			}
			for x := 0; x < m.bs; x++ {
				for y := 0; y < m.bs; y++ {
					d[bi*m.bs+x][bj*m.bs+y] = b[x*m.bs+y]
				}
			}
		}
	}
	return d
}

// denseLU factorises in place (Doolittle, no pivoting).
func denseLU(a [][]float64) {
	n := len(a)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i][k] /= a[k][k]
			for j := k + 1; j < n; j++ {
				a[i][j] -= a[i][k] * a[k][j]
			}
		}
	}
}

func TestSparseLUMatchesDenseLU(t *testing.T) {
	// The blocked sparse factorization must agree with a dense LU of
	// the expanded matrix — entry by entry, including fill-in blocks.
	p := sparseluParams{nb: 4, bs: 4}
	m := sparseluInput(p)
	want := denseFromBlocks(m)
	denseLU(want)

	sparseluFactor(sequentialRuntime{}, m)
	got := denseFromBlocks(m)
	for i := range want {
		for j := range want[i] {
			// Structurally-zero blocks never touched by bmod stay zero
			// in the blocked version; dense LU fills them identically
			// because their fill comes only through bmod-reachable
			// paths. Compare everything.
			if math.Abs(got[i][j]-want[i][j]) > 1e-8 {
				t.Fatalf("(%d,%d): blocked %g != dense %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestLU0ReconstructsBlock(t *testing.T) {
	// lu0 produces L (unit diagonal) and U with L*U = A.
	p := sparseluParams{nb: 1, bs: 6}
	m := sparseluInput(p)
	orig := append([]float64(nil), m.at(0, 0)...)
	lu0(m.at(0, 0), p.bs)
	f := m.at(0, 0)
	bs := p.bs
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := f[i*bs+k]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				u := f[k*bs+j]
				if k > j {
					u = 0
				}
				sum += l * u
			}
			if math.Abs(sum-orig[i*bs+j]) > 1e-9 {
				t.Fatalf("L*U != A at (%d,%d): %g vs %g", i, j, sum, orig[i*bs+j])
			}
		}
	}
}

func TestSparseLUParallelEqualsSequential(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	m1 := sparseluInput(sparseluSize(Test))
	m2 := sparseluInput(sparseluSize(Test))
	sparseluFactor(rt, m1)
	sparseluFactor(sequentialRuntime{}, m2)
	for i := range m1.blocks {
		b1, b2 := m1.blocks[i], m2.blocks[i]
		if (b1 == nil) != (b2 == nil) {
			t.Fatalf("fill-in structure differs at block %d", i)
		}
		for j := range b1 {
			if b1[j] != b2[j] { // identical arithmetic -> bitwise equal
				t.Fatalf("block %d entry %d: %g != %g", i, j, b1[j], b2[j])
			}
		}
	}
}

func TestSparseLUPatternDeterministic(t *testing.T) {
	a := sparseluInput(sparseluSize(Test))
	b := sparseluInput(sparseluSize(Test))
	for i := range a.blocks {
		if (a.blocks[i] == nil) != (b.blocks[i] == nil) {
			t.Fatal("sparsity pattern not deterministic")
		}
	}
	// The BOTS pattern: diagonal, first row and first column present.
	for k := 0; k < a.nb; k++ {
		if a.at(k, k) == nil || a.at(0, k) == nil || a.at(k, 0) == nil {
			t.Fatalf("required block missing at %d", k)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
