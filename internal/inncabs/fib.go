package inncabs

import "repro/internal/sim"

// Fib: the classic doubly recursive Fibonacci, one task per recursive
// call above the sequential cutoff. Recursive balanced, no
// synchronization, very fine grain (Table V: 1.37 µs). The std::async
// version fails on the paper's platform: every in-flight call holds an
// OS thread and the call tree keeps ~fib(n-cutoff) of them live at once.

type fibParams struct {
	n      int
	cutoff int
}

func fibSize(s Size) fibParams {
	switch s {
	case Test:
		return fibParams{n: 18, cutoff: 8}
	case Small:
		return fibParams{n: 24, cutoff: 10}
	case Medium:
		return fibParams{n: 28, cutoff: 12}
	default: // Paper: Inncabs runs fib(30+)
		return fibParams{n: 30, cutoff: 12}
	}
}

// fibSeq is the sequential kernel below the cutoff.
func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func fibTask(rt Runtime, n, cutoff int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n <= cutoff {
		return fibSeq(n)
	}
	left := rt.Async(func() any { return fibTask(rt, n-1, cutoff) })
	right := fibTask(rt, n-2, cutoff)
	return left.Get().(int64) + right
}

func fibRun(rt Runtime, size Size) int64 {
	p := fibSize(size)
	return fibTask(rt, p.n, p.cutoff)
}

func fibRef(size Size) int64 {
	p := fibSize(size)
	// Iterative reference.
	a, b := int64(0), int64(1)
	for i := 0; i < p.n; i++ {
		a, b = b, a+b
	}
	return a
}

// fibGraph mirrors the truncated call tree: interior nodes split into
// fib(n-1) and fib(n-2) subtrees, leaves carry the sequential kernel's
// work. The leaf work is scaled so the average task duration matches
// Table V's 1.37 µs.
func fibGraph(size Size) *sim.Graph {
	p := fibSize(size)
	if size == Paper {
		// The original spawns a task for every call; a cutoff of 5
		// reproduces that spawn volume (~390k tasks, peak live
		// concurrency beyond the baseline's ~90k-thread ceiling — the
		// paper's observed failure).
		p.cutoff = 5
	}
	work := grainNs(1.37)
	bytes := taskBytes(fibIntensity, work)
	var build func(n int) *sim.Node
	build = func(n int) *sim.Node {
		if n <= p.cutoff {
			return sim.Leaf(work, bytes)
		}
		return &sim.Node{
			PreNs:    work / 2, // the spawning call's own bookkeeping
			PostNs:   work / 2,
			Children: []*sim.Node{build(n - 1), build(n - 2)},
		}
	}
	return &sim.Graph{Label: "fib", Root: build(p.n)}
}

// fibIntensity: pure integer recursion, nearly no off-core traffic.
const fibIntensity = 0.05e9

var fibBenchmark = register(&Benchmark{
	Name:            "fib",
	Class:           "Recursive Balanced",
	Sync:            "none",
	Granularity:     "very fine",
	PaperTaskUs:     1.37,
	PaperStdScaling: "fail",
	PaperHPXScaling: "to 10",
	MemIntensity:    fibIntensity,
	Run:             fibRun,
	RefChecksum:     fibRef,
	TaskGraph:       fibGraph,
})
