package inncabs

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/taskrt"
)

// ctxBenchmarks are the long-running kernels with a cancellable variant.
var ctxBenchmarks = []string{"uts", "health", "sparselu"}

// TestCancelRunCtxMatchesReference: with a live context the cancellable
// kernels must compute exactly the reference checksum — the ctx plumbing
// must not change the arithmetic.
func TestCancelRunCtxMatchesReference(t *testing.T) {
	for _, name := range ctxBenchmarks {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.RunCtx == nil {
			t.Fatalf("%s has no RunCtx", name)
		}
		rt := hpxTestRuntime(t, 4)
		got, err := b.RunCtx(context.Background(), rt, Test)
		if err != nil {
			t.Fatalf("%s: RunCtx error on live context: %v", name, err)
		}
		if want := b.RefChecksum(Test); got != want {
			t.Fatalf("%s: RunCtx checksum %d, want %d", name, got, want)
		}
	}
}

// TestCancelRunCtxSequentialFallback: runtimes without native
// cancellation still work (context consulted at spawn time only).
func TestCancelRunCtxSequentialFallback(t *testing.T) {
	b, err := ByName("uts")
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.RunCtx(context.Background(), sequentialRuntime{}, Test)
	if err != nil || got != b.RefChecksum(Test) {
		t.Fatalf("sequential RunCtx = %d, %v; want %d", got, err, b.RefChecksum(Test))
	}
}

// TestCancelHugeRunStopsQuickly is the acceptance test: cancelling the
// root context of a Huge run must return control within the latency
// budget, with the dropped spawn-storm tasks accounted in the runtime's
// cancelled counter.
func TestCancelHugeRunStopsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("Huge cancellation runs are not -short material")
	}
	// The 100 ms budget assumes production scheduling; the race detector
	// serializes everything, so give it headroom.
	limit := 100 * time.Millisecond
	if raceEnabled {
		limit = 500 * time.Millisecond
	}
	for _, name := range ctxBenchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			trt := taskrt.New(taskrt.WithWorkers(4))
			defer trt.Shutdown()
			rt := NewHPX(trt)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := b.RunCtx(ctx, rt, Huge)
				done <- err
			}()
			time.Sleep(100 * time.Millisecond) // let the spawn storm build
			cancel()
			cancelAt := time.Now()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("cancelled Huge run returned no error")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled Huge run never returned")
			}
			if elapsed := time.Since(cancelAt); elapsed > limit {
				t.Fatalf("run stopped %v after cancel, budget %v", elapsed, limit)
			}
			if name != "sparselu" && trt.Cancelled() == 0 {
				// uts/health keep deep spawn queues; some tasks must have
				// been dropped at dispatch. (sparselu joins each phase, so
				// its queue may legitimately be empty at cancel time.)
				t.Error("no dropped-at-dispatch tasks in the cancelled counter")
			}
		})
	}
}

// TestWatchdogCleanInncabsRun: the satellite false-positive check — a
// clean Medium fib and sort run under an aggressively sampling watchdog
// must raise zero health events.
func TestWatchdogCleanInncabsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("Medium-size runs are not -short material")
	}
	trt := taskrt.New(taskrt.WithWorkers(4))
	defer trt.Shutdown()
	var mu sync.Mutex
	var events []taskrt.HealthEvent
	cfg := taskrt.WatchdogConfig{
		Interval: 5 * time.Millisecond, // default 1s thresholds
		OnEvent: func(ev taskrt.HealthEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	if raceEnabled {
		// The race detector slows the run ~10x, so the fork/join roots
		// legitimately outlive the production stall threshold.
		cfg.StallThreshold = time.Minute
		cfg.StarvationThreshold = time.Minute
	}
	trt.StartWatchdog(cfg)
	rt := NewHPX(trt)
	for _, name := range []string{"fib", "sort"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := b.Run(rt, Medium), b.RefChecksum(Medium); got != want {
			t.Fatalf("%s Medium checksum %d, want %d", name, got, want)
		}
	}
	trt.StopWatchdog()
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 0 {
		t.Fatalf("clean Medium fib+sort run raised %d health events: %v", len(events), events)
	}
}
