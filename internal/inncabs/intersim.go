package inncabs

import "repro/internal/sim"

// Intersim: interconnection-network simulation. A ring of switches
// forwards messages hop by hop; every simulated cycle spawns one task
// per switch which drains its inbox under the inbox mutex, routes each
// message (decrementing its TTL), and deposits survivors into the next
// switch's inbox under that mutex — multiple mutex acquisitions per
// task, the suite's "Co-dependent" worst case. Very fine grain
// (Table V: 3.46 µs); the paper sees no std scaling and HPX scaling to
// ~10 cores.

type intersimParams struct {
	switches int
	cycles   int
	seedMsgs int // messages injected per switch at cycle 0
	ttl      int
}

func intersimSize(s Size) intersimParams {
	switch s {
	case Test:
		return intersimParams{switches: 8, cycles: 16, seedMsgs: 4, ttl: 12}
	case Small:
		return intersimParams{switches: 32, cycles: 48, seedMsgs: 4, ttl: 24}
	case Medium:
		return intersimParams{switches: 64, cycles: 128, seedMsgs: 6, ttl: 48}
	default: // Paper-shaped: ~1.7e6 task-messages scaled down
		return intersimParams{switches: 128, cycles: 256, seedMsgs: 8, ttl: 64}
	}
}

// message is one packet in flight.
type message struct {
	id   uint64
	ttl  int
	hops int64
}

// switchNode is one network switch with a mutex-protected inbox.
type switchNode struct {
	mu interface {
		Lock()
		Unlock()
	}
	inbox   []message
	staging []message // next cycle's arrivals
}

// intersimRunOn simulates the ring. Within a cycle, a switch task reads
// its own inbox and appends to the neighbour's staging area (guarded by
// the neighbour's mutex); the join between cycles promotes staging to
// inbox, so cycles are deterministic regardless of task interleaving.
func intersimRunOn(rt Runtime, size Size) int64 {
	p := intersimSize(size)
	switches := make([]*switchNode, p.switches)
	for i := range switches {
		switches[i] = &switchNode{mu: rt.NewMutex()}
	}
	// Seed messages deterministically.
	for i, sw := range switches {
		for m := 0; m < p.seedMsgs; m++ {
			id := hash64(uint64(i)*131 + uint64(m))
			sw.inbox = append(sw.inbox, message{id: id, ttl: p.ttl})
		}
	}
	var delivered int64
	var totalHops int64
	deliveredCh := make(chan int64, p.switches)
	hopsCh := make(chan int64, p.switches)

	for cycle := 0; cycle < p.cycles; cycle++ {
		var futures []Future
		for i := range switches {
			i := i
			futures = append(futures, rt.Async(func() any {
				sw := switches[i]
				next := switches[(i+1)%len(switches)]
				sw.mu.Lock()
				msgs := sw.inbox
				sw.inbox = nil
				sw.mu.Unlock()
				var del, hops int64
				var forward []message
				for _, m := range msgs {
					// Routing decision: a hash of id and position decides
					// whether the message terminates here.
					m.hops++
					m.ttl--
					if m.ttl <= 0 || hash64(m.id+uint64(i))%16 == 0 {
						del++
						hops += m.hops
						continue
					}
					forward = append(forward, m)
				}
				next.mu.Lock()
				next.staging = append(next.staging, forward...)
				next.mu.Unlock()
				deliveredCh <- del
				hopsCh <- hops
				return nil
			}))
		}
		for _, f := range futures {
			f.Get()
		}
		for range futures {
			delivered += <-deliveredCh
			totalHops += <-hopsCh
		}
		// Promote staged arrivals; single-threaded between cycles.
		for _, sw := range switches {
			sw.inbox = append(sw.inbox, sw.staging...)
			sw.staging = nil
		}
	}
	return delivered*1000003 + totalHops
}

func intersimRun(rt Runtime, size Size) int64 { return intersimRunOn(rt, size) }

func intersimRef(size Size) int64 { return intersimRunOn(sequentialRuntime{}, size) }

// intersimGraph: cycles in series, one 3.46 µs task per switch per
// cycle.
func intersimGraph(size Size) *sim.Graph {
	p := intersimSize(size)
	work := grainNs(3.46)
	bytes := taskBytes(intersimIntensity, work)
	root := &sim.Node{Serial: true}
	for c := 0; c < p.cycles; c++ {
		// The staging-to-inbox promotion between cycles is sequential
		// (~200 ns per switch), an Amdahl term that caps the scaling of
		// this co-dependent benchmark.
		stage := &sim.Node{PostNs: int64(p.switches) * 200}
		for i := 0; i < p.switches; i++ {
			stage.Children = append(stage.Children, sim.Leaf(work, bytes))
		}
		root.Children = append(root.Children, stage)
	}
	return &sim.Graph{Label: "intersim", Root: root}
}

// intersimIntensity: queue shuffling: ~1 GB/s.
const intersimIntensity = 1e9

var intersimBenchmark = register(&Benchmark{
	Name:            "intersim",
	Class:           "Co-dependent",
	Sync:            "mult. mutex/task",
	Granularity:     "very fine",
	PaperTaskUs:     3.46,
	PaperStdScaling: "no scaling",
	PaperHPXScaling: "to 10",
	MemIntensity:    intersimIntensity,
	Run:             intersimRun,
	RefChecksum:     intersimRef,
	TaskGraph:       intersimGraph,
})
