package inncabs

import (
	"context"

	"repro/internal/sim"
)

// UTS: Unbalanced Tree Search. The tree is defined implicitly: a node's
// child count is derived from a hash of its identifier (a geometric
// distribution whose expectation decays with depth), and the search
// counts the nodes. One task per child — the exhaustive, very fine
// grained spawn pattern (Table V: 1.37 µs) that exhausts the std::async
// baseline's thread budget.

type utsParams struct {
	rootChildren int
	maxDepth     int
	// q1024 is the survival probability in 1/1024 units: an interior
	// node below the root has a child with probability q per slot.
	q1024 uint64
	slots int
	// seqDepth: subtrees below this depth are traversed sequentially
	// inside their task, bounding task count while keeping the spawn
	// storm above it.
	seqDepth int
}

func utsSize(s Size) utsParams {
	switch s {
	case Test:
		return utsParams{rootChildren: 16, maxDepth: 8, q1024: 450, slots: 4, seqDepth: 4}
	case Small:
		return utsParams{rootChildren: 64, maxDepth: 10, q1024: 470, slots: 4, seqDepth: 6}
	case Medium:
		return utsParams{rootChildren: 128, maxDepth: 12, q1024: 480, slots: 4, seqDepth: 9}
	case Huge:
		// Minutes-scale spawn storm for cancellation/shedding tests.
		return utsParams{rootChildren: 512, maxDepth: 17, q1024: 505, slots: 4, seqDepth: 12}
	default: // Paper-shaped geometric tree, scaled
		return utsParams{rootChildren: 256, maxDepth: 13, q1024: 490, slots: 4, seqDepth: 11}
	}
}

// utsChildren derives the child ids of a node from its id and depth.
func utsChildren(p utsParams, id uint64, depth int) []uint64 {
	if depth >= p.maxDepth {
		return nil
	}
	if depth == 0 {
		kids := make([]uint64, p.rootChildren)
		for i := range kids {
			kids[i] = hash64(id + uint64(i) + 1)
		}
		return kids
	}
	var kids []uint64
	for i := 0; i < p.slots; i++ {
		h := hash64(id ^ uint64(i)*0x9e3779b97f4a7c15)
		if h%1024 < p.q1024 {
			kids = append(kids, h)
		}
	}
	return kids
}

// utsCountSeq traverses a subtree sequentially.
func utsCountSeq(p utsParams, id uint64, depth int) int64 {
	count := int64(1)
	for _, c := range utsChildren(p, id, depth) {
		count += utsCountSeq(p, c, depth+1)
	}
	return count
}

// utsCountTask spawns one task per child above seqDepth.
func utsCountTask(rt Runtime, p utsParams, id uint64, depth int) int64 {
	if depth >= p.seqDepth {
		return utsCountSeq(p, id, depth)
	}
	var futures []Future
	for _, c := range utsChildren(p, id, depth) {
		c := c
		futures = append(futures, rt.Async(func() any {
			return utsCountTask(rt, p, c, depth+1)
		}))
	}
	count := int64(1)
	for _, f := range futures {
		count += f.Get().(int64)
	}
	return count
}

func utsRun(rt Runtime, size Size) int64 {
	p := utsSize(size)
	return utsCountTask(rt, p, 0x07357357, 0)
}

// utsCountSeqCtx is utsCountSeq with an amortized cancellation probe:
// the traversal abandons the subtree once the context dies.
func utsCountSeqCtx(p utsParams, probe *ctxProbe, id uint64, depth int) int64 {
	if probe.cancelled() {
		return 0
	}
	count := int64(1)
	for _, c := range utsChildren(p, id, depth) {
		count += utsCountSeqCtx(p, probe, c, depth+1)
	}
	return count
}

// utsCountTaskCtx is the cancellable spawn path: child tasks join ctx's
// cancellation tree, so a cancel drops the queued part of the spawn
// storm at dispatch while running subtrees notice via their probes.
func utsCountTaskCtx(ctx context.Context, rt Runtime, p utsParams, id uint64, depth int) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if depth >= p.seqDepth {
		probe := &ctxProbe{ctx: ctx}
		n := utsCountSeqCtx(p, probe, id, depth)
		if probe.dead {
			return n, ctx.Err()
		}
		return n, nil
	}
	var futures []Future
	for _, c := range utsChildren(p, id, depth) {
		c := c
		futures = append(futures, asyncCtx(ctx, rt, func() any {
			n, err := utsCountTaskCtx(ctx, rt, p, c, depth+1)
			if err != nil {
				return err
			}
			return n
		}))
	}
	count := int64(1)
	var firstErr error
	for _, f := range futures {
		v, err := getErr(f)
		if err == nil {
			if e, ok := v.(error); ok {
				err = e
			}
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		count += v.(int64)
	}
	return count, firstErr
}

func utsRunCtx(ctx context.Context, rt Runtime, size Size) (int64, error) {
	p := utsSize(size)
	return utsCountTaskCtx(ctx, rt, p, 0x07357357, 0)
}

func utsRef(size Size) int64 {
	p := utsSize(size)
	return utsCountSeq(p, 0x07357357, 0)
}

// utsGraph mirrors the implicit tree's spawn structure (deterministic,
// derived from the same hash) with one 1.37 µs task per node — the real
// benchmark's exhaustive spawn pattern.
func utsGraph(size Size) *sim.Graph {
	p := utsSize(size)
	work := grainNs(1.37)
	bytes := taskBytes(utsIntensity, work)
	var build func(id uint64, depth int) *sim.Node
	build = func(id uint64, depth int) *sim.Node {
		n := &sim.Node{PreNs: work, PreBytes: bytes}
		for _, c := range utsChildren(p, id, depth) {
			n.Children = append(n.Children, build(c, depth+1))
		}
		return n
	}
	return &sim.Graph{Label: "uts", Root: build(0x07357357, 0)}
}

// utsIntensity: hash-dominated traversal, little off-core traffic.
const utsIntensity = 0.2e9

var utsBenchmark = register(&Benchmark{
	Name:            "uts",
	Class:           "Recursive Unbalanced",
	Sync:            "none",
	Granularity:     "very fine",
	PaperTaskUs:     1.37,
	PaperStdScaling: "fail",
	PaperHPXScaling: "to 10",
	MemIntensity:    utsIntensity,
	Run:             utsRun,
	RunCtx:          utsRunCtx,
	RefChecksum:     utsRef,
	TaskGraph:       utsGraph,
})
