package inncabs

import (
	"math"
	"testing"
)

func TestStencilStepConservesMass(t *testing.T) {
	// The kernel 0.25/0.5/0.25 with periodic boundary conserves the sum.
	src := pyramidsInput(64)
	dst := make([]float64, 64)
	stencilStep(dst, src, 0, 64)
	var a, b float64
	for i := range src {
		a += src[i]
		b += dst[i]
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("mass not conserved: %g -> %g", a, b)
	}
}

func TestPyramidBlockMatchesDirect(t *testing.T) {
	// A block with full halo must reproduce the global stepping exactly
	// (bitwise: the arithmetic per point is identical).
	n, h := 64, 5
	src := pyramidsInput(n)
	// Direct: h global steps.
	direct := append([]float64(nil), src...)
	tmp := make([]float64, n)
	for s := 0; s < h; s++ {
		stencilStep(tmp, direct, 0, n)
		direct, tmp = tmp, direct
	}
	// Blocked: every block computed independently with halos.
	blocked := make([]float64, n)
	for lo := 0; lo < n; lo += 16 {
		pyramidBlock(blocked, src, lo, lo+16, h)
	}
	for i := range direct {
		if blocked[i] != direct[i] {
			t.Fatalf("point %d: blocked %g != direct %g", i, blocked[i], direct[i])
		}
	}
}

func TestPyramidsParallelBitwiseEqualsSequential(t *testing.T) {
	rt := hpxTestRuntime(t, 4)
	p := pyramidsSize(Test)
	par := pyramidsTask(rt, pyramidsInput(p.n), p.steps, p.base)
	seq := pyramidsInput(p.n)
	tmp := make([]float64, p.n)
	for s := 0; s < p.steps; s++ {
		stencilStep(tmp, seq, 0, p.n)
		seq, tmp = tmp, seq
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("point %d: parallel %g != sequential %g", i, par[i], seq[i])
		}
	}
}

func TestPyramidsStaysBounded(t *testing.T) {
	// The averaging kernel never exceeds the initial range [0,1).
	p := pyramidsSize(Test)
	rt := hpxTestRuntime(t, 2)
	out := pyramidsTask(rt, pyramidsInput(p.n), p.steps, p.base)
	for i, v := range out {
		if v < 0 || v >= 1 {
			t.Fatalf("point %d escaped [0,1): %g", i, v)
		}
	}
}

func TestPyramidsGraphIsSlabSequence(t *testing.T) {
	g := pyramidsGraph(Test) // 2 slabs x 8 blocks
	st := g.Stats()
	if st.Tasks != 1+2*(1+8) {
		t.Fatalf("graph tasks = %d", st.Tasks)
	}
	if !g.Root.Serial {
		t.Fatal("slab stages must be serial")
	}
}
