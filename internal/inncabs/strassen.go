package inncabs

import (
	"math"

	"repro/internal/sim"
)

// Strassen: Strassen-Winograd style recursive matrix multiplication.
// Each recursion level spawns the seven sub-multiplications as tasks;
// below the cutoff a cache-friendly standard multiply runs. Recursive
// balanced, no synchronization, fine grain (Table V: 107 µs). The paper:
// HPX scales well (speedup 11 at 20 cores), the std version fails for
// some experiments.

type strassenParams struct {
	n      int // matrix dimension (power of two)
	cutoff int // dimension below which the naive kernel runs
}

func strassenSize(s Size) strassenParams {
	switch s {
	case Test:
		return strassenParams{n: 64, cutoff: 16}
	case Small:
		return strassenParams{n: 128, cutoff: 32}
	case Medium:
		return strassenParams{n: 256, cutoff: 32}
	default: // Paper: 4096x4096; scaled to 512 here
		return strassenParams{n: 512, cutoff: 64}
	}
}

// matrix is a dense row-major square matrix.
type matrix struct {
	n    int
	data []float64
}

func newMatrix(n int) *matrix { return &matrix{n: n, data: make([]float64, n*n)} }

func (m *matrix) at(i, j int) float64     { return m.data[i*m.n+j] }
func (m *matrix) set(i, j int, v float64) { m.data[i*m.n+j] = v }

func strassenInput(n int) (*matrix, *matrix) {
	prng := newPRNG(0x57A5)
	a, b := newMatrix(n), newMatrix(n)
	for i := range a.data {
		a.data[i] = prng.float64n()*2 - 1
		b.data[i] = prng.float64n()*2 - 1
	}
	return a, b
}

// quadrant copies quadrant (qi, qj) of m (each 0 or 1) into a new
// half-size matrix.
func (m *matrix) quadrant(qi, qj int) *matrix {
	h := m.n / 2
	q := newMatrix(h)
	for i := 0; i < h; i++ {
		copy(q.data[i*h:(i+1)*h], m.data[(qi*h+i)*m.n+qj*h:(qi*h+i)*m.n+qj*h+h])
	}
	return q
}

// setQuadrant writes q into quadrant (qi, qj) of m.
func (m *matrix) setQuadrant(qi, qj int, q *matrix) {
	h := q.n
	for i := 0; i < h; i++ {
		copy(m.data[(qi*h+i)*m.n+qj*h:(qi*h+i)*m.n+qj*h+h], q.data[i*h:(i+1)*h])
	}
}

func matAdd(a, b *matrix) *matrix {
	c := newMatrix(a.n)
	for i := range c.data {
		c.data[i] = a.data[i] + b.data[i]
	}
	return c
}

func matSub(a, b *matrix) *matrix {
	c := newMatrix(a.n)
	for i := range c.data {
		c.data[i] = a.data[i] - b.data[i]
	}
	return c
}

// matMulNaive is the base-case kernel: ikj loop order for locality.
func matMulNaive(a, b *matrix) *matrix {
	n := a.n
	c := newMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.data[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*n : k*n+n]
			crow := c.data[i*n : i*n+n]
			for j := 0; j < n; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// strassenMul multiplies recursively, spawning the seven products.
func strassenMul(rt Runtime, a, b *matrix, cutoff int) *matrix {
	if a.n <= cutoff {
		return matMulNaive(a, b)
	}
	a11, a12 := a.quadrant(0, 0), a.quadrant(0, 1)
	a21, a22 := a.quadrant(1, 0), a.quadrant(1, 1)
	b11, b12 := b.quadrant(0, 0), b.quadrant(0, 1)
	b21, b22 := b.quadrant(1, 0), b.quadrant(1, 1)

	spawn := func(x, y *matrix) Future {
		return rt.Async(func() any { return strassenMul(rt, x, y, cutoff) })
	}
	// Strassen's seven products; the last runs on the current task.
	m1f := spawn(matAdd(a11, a22), matAdd(b11, b22))
	m2f := spawn(matAdd(a21, a22), b11)
	m3f := spawn(a11, matSub(b12, b22))
	m4f := spawn(a22, matSub(b21, b11))
	m5f := spawn(matAdd(a11, a12), b22)
	m6f := spawn(matSub(a21, a11), matAdd(b11, b12))
	m7 := strassenMul(rt, matSub(a12, a22), matAdd(b21, b22), cutoff)

	m1 := m1f.Get().(*matrix)
	m2 := m2f.Get().(*matrix)
	m3 := m3f.Get().(*matrix)
	m4 := m4f.Get().(*matrix)
	m5 := m5f.Get().(*matrix)
	m6 := m6f.Get().(*matrix)

	c := newMatrix(a.n)
	c.setQuadrant(0, 0, matAdd(matSub(matAdd(m1, m4), m5), m7))
	c.setQuadrant(0, 1, matAdd(m3, m5))
	c.setQuadrant(1, 0, matAdd(m2, m4))
	c.setQuadrant(1, 1, matAdd(matAdd(matSub(m1, m2), m3), m6))
	return c
}

// strassenChecksum sums the product's entries after rounding each to two
// decimals, which is robust to the float reassociation differences
// between Strassen and the naive reference while still detecting any
// misplaced or wrong entry of meaningful magnitude.
func strassenChecksum(m *matrix) int64 {
	var s int64
	for _, v := range m.data {
		s += int64(math.Round(v * 100))
	}
	return s
}

func strassenRun(rt Runtime, size Size) int64 {
	p := strassenSize(size)
	a, b := strassenInput(p.n)
	return strassenChecksum(strassenMul(rt, a, b, p.cutoff))
}

func strassenRef(size Size) int64 {
	p := strassenSize(size)
	a, b := strassenInput(p.n)
	return strassenChecksum(matMulNaive(a, b))
}

// strassenGraph: 7-ary recursion with additions at the divide/combine
// steps; leaves run the 107 µs base-case kernel.
func strassenGraph(size Size) *sim.Graph {
	levels := 0
	switch size {
	case Test:
		levels = 2
	case Small:
		levels = 3
	case Medium:
		levels = 4
	default:
		// Paper: 4096 matrices over a 64 cutoff -> six levels, 7^6 ≈
		// 118k tasks; live concurrency beyond the thread ceiling is why
		// "some" std experiments fail in Table V.
		levels = 6
	}
	leafWork := grainNs(107)
	var build func(level int, dimNs int64) *sim.Node
	build = func(level int, dimNs int64) *sim.Node {
		if level == 0 {
			return sim.Leaf(leafWork, taskBytes(strassenIntensity, leafWork))
		}
		// Additions before and after the products are O(n^2) each.
		addWork := dimNs
		n := &sim.Node{
			PreNs:     addWork,
			PostNs:    addWork,
			PreBytes:  taskBytes(strassenIntensity, addWork),
			PostBytes: taskBytes(strassenIntensity, addWork),
		}
		for i := 0; i < 7; i++ {
			n.Children = append(n.Children, build(level-1, dimNs/4))
		}
		return n
	}
	// Top-level addition work ≈ a few quadrant copies of the full
	// matrix, tiny next to the products.
	return &sim.Graph{Label: "strassen", Root: build(levels, grainNs(107)*4)}
}

// strassenIntensity: blocked multiplies stream operands: ~3 GB/s per
// core.
const strassenIntensity = 3e9

var strassenBenchmark = register(&Benchmark{
	Name:            "strassen",
	Class:           "Recursive Balanced",
	Sync:            "none",
	Granularity:     "fine",
	PaperTaskUs:     107,
	PaperStdScaling: "(some fail) to 8",
	PaperHPXScaling: "to 20",
	MemIntensity:    strassenIntensity,
	Run:             strassenRun,
	RefChecksum:     strassenRef,
	TaskGraph:       strassenGraph,
})
