package inncabs

import "testing"

func TestFibSeq(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, v := range want {
		if got := fibSeq(n); got != v {
			t.Errorf("fibSeq(%d) = %d want %d", n, got, v)
		}
	}
}

func TestFibRefIterative(t *testing.T) {
	for _, s := range []Size{Test, Small, Medium, Paper} {
		p := fibSize(s)
		if got, want := fibRef(s), fibSeq(p.n); got != want {
			t.Errorf("size %v: iterative %d != recursive %d", s, got, want)
		}
	}
}

func TestFibTaskCutoffs(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	for _, cutoff := range []int{0, 1, 5, 20} {
		if got := fibTask(rt, 20, cutoff); got != 6765 {
			t.Errorf("cutoff %d: fib(20) = %d", cutoff, got)
		}
	}
}

func TestFibGraphStructure(t *testing.T) {
	// The truncated call tree of fib(n) with cutoff c has
	// S(n-c) nodes where S(k) = 1 + S(k-1) + S(k-2), S(k<=0) = 1,
	// which closes to 2*fib(k+2) - 1.
	g := fibGraph(Test) // n=18, cutoff=8
	want := 2*fibSeq(18-8+2) - 1
	if got := g.Stats().Tasks; got != want {
		t.Fatalf("graph tasks = %d want %d", got, want)
	}
	// The Paper graph reproduces the spawn explosion (cutoff 5).
	gp := fibGraph(Paper)
	if got := gp.Stats().Tasks; got != 2*fibSeq(30-5+2)-1 {
		t.Fatalf("paper graph tasks = %d", got)
	}
}
