package inncabs

import "repro/internal/sim"

// Alignment: pairwise global alignment of protein sequences
// (Needleman-Wunsch with affine gap penalties, as in the original
// Inncabs/SPEC alignment kernel). Loop-like: one task per sequence pair,
// no synchronization. Table V: 2748 µs tasks, coarse, both runtimes
// scale to 20 cores; Table I: 4950 tasks, i.e. all pairs of 100
// sequences.

const alignAlphabet = 20

// alignmentParams describe one workload size.
type alignmentParams struct {
	sequences int
	length    int
}

func alignmentSize(s Size) alignmentParams {
	switch s {
	case Test:
		return alignmentParams{sequences: 8, length: 48}
	case Small:
		return alignmentParams{sequences: 24, length: 96}
	case Medium:
		return alignmentParams{sequences: 60, length: 160}
	default: // Paper: 100 protein sequences -> 4950 pair tasks
		return alignmentParams{sequences: 100, length: 256}
	}
}

// alignmentInput generates deterministic pseudo-protein sequences and the
// BLOSUM-like substitution matrix.
func alignmentInput(p alignmentParams) (seqs [][]byte, score [alignAlphabet][alignAlphabet]int32) {
	prng := newPRNG(0xA11C)
	seqs = make([][]byte, p.sequences)
	for i := range seqs {
		s := make([]byte, p.length)
		for j := range s {
			s[j] = byte(prng.intn(alignAlphabet))
		}
		seqs[i] = s
	}
	for i := 0; i < alignAlphabet; i++ {
		for j := 0; j <= i; j++ {
			v := int32(prng.intn(9)) - 4 // -4..4
			if i == j {
				v = int32(prng.intn(5)) + 4 // 4..8 on the diagonal
			}
			score[i][j] = v
			score[j][i] = v
		}
	}
	return seqs, score
}

// needlemanWunsch computes the global alignment score with affine gaps
// (Gotoh's algorithm, gap open 10, extend 1) in O(len(a)*len(b)) time and
// O(len(b)) space. best[j] holds max(M, Ix, Iy) of the previous row at
// column j; vert[j] holds Ix (gap in b, vertical) of the previous row.
func needlemanWunsch(a, b []byte, score *[alignAlphabet][alignAlphabet]int32) int32 {
	const (
		gapOpen   = 10
		gapExtend = 1
		negInf    = int32(-1 << 28)
	)
	n := len(b)
	best := make([]int32, n+1)
	vert := make([]int32, n+1)
	best[0] = 0
	vert[0] = negInf
	for j := 1; j <= n; j++ {
		best[j] = -gapOpen - int32(j-1)*gapExtend
		vert[j] = negInf
	}
	for i := 1; i <= len(a); i++ {
		diag := best[0] // best[i-1][j-1]
		best[0] = -gapOpen - int32(i-1)*gapExtend
		horiz := negInf // Iy (gap in a) within the current row
		for j := 1; j <= n; j++ {
			vert[j] = max32(best[j]-gapOpen, vert[j]-gapExtend)
			horiz = max32(best[j-1]-gapOpen, horiz-gapExtend)
			match := diag + score[a[i-1]][b[j-1]]
			diag = best[j]
			best[j] = max32(match, max32(vert[j], horiz))
		}
	}
	return best[n]
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// alignmentRun aligns all pairs, one task per pair, and sums the
// scores. The all-pairs fan-out is the suite's widest node (4950 tasks
// at Paper size), so the whole wave is launched as one batch
// transaction, with Table V's measured grain as the inline hint.
func alignmentRun(rt Runtime, size Size) int64 {
	p := alignmentSize(size)
	seqs, score := alignmentInput(p)
	var fns []func() any
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			a, b := seqs[i], seqs[j]
			fns = append(fns, func() any {
				return int64(needlemanWunsch(a, b, &score))
			})
		}
	}
	var sum int64
	for _, f := range asyncAll(rt, grainNs(2748), fns) { // Table V: 2748 µs tasks
		sum += f.Get().(int64)
	}
	return sum
}

// alignmentRef computes the checksum sequentially.
func alignmentRef(size Size) int64 {
	p := alignmentSize(size)
	seqs, score := alignmentInput(p)
	var sum int64
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			sum += int64(needlemanWunsch(seqs[i], seqs[j], &score))
		}
	}
	return sum
}

// alignmentGraph: all-pairs fan-out at the paper's 2748 µs grain.
func alignmentGraph(size Size) *sim.Graph {
	p := alignmentSize(Paper)
	tasks := p.sequences * (p.sequences - 1) / 2 // 4950
	switch size {
	case Test:
		tasks = 64
	case Small:
		tasks = 512
	case Medium:
		tasks = 2048
	}
	return fanoutGraph("alignment", tasks, grainNs(2748), alignmentIntensity)
}

// alignmentIntensity keeps Alignment compute-bound: ~0.9 GB/s per core,
// so even 20 cores (≈18 GB/s) stay below socket bandwidth and the
// off-core bandwidth of Figure 13 grows nearly linearly with cores.
const alignmentIntensity = 0.9e9

var alignmentBenchmark = register(&Benchmark{
	Name:            "alignment",
	Class:           "Loop Like",
	Sync:            "none",
	Granularity:     "coarse",
	PaperTaskUs:     2748,
	PaperStdScaling: "to 20",
	PaperHPXScaling: "to 20",
	MemIntensity:    alignmentIntensity,
	Run:             alignmentRun,
	RefChecksum:     alignmentRef,
	TaskGraph:       alignmentGraph,
})
