package inncabs

import "repro/internal/sim"

// NQueens: count all placements of n queens on an n×n board, one task
// per candidate column in the first `parallelDepth` rows, sequential
// backtracking below. Recursive unbalanced, no synchronization, fine
// grain (Table V: 28.1 µs). The std::async version fails outright on the
// paper's platform — the spawn tree keeps tens of thousands of threads
// live.

type nqueensParams struct {
	n             int
	parallelDepth int
}

func nqueensSize(s Size) nqueensParams {
	switch s {
	case Test:
		return nqueensParams{n: 8, parallelDepth: 2}
	case Small:
		return nqueensParams{n: 10, parallelDepth: 3}
	case Medium:
		return nqueensParams{n: 12, parallelDepth: 3}
	default: // Paper: Inncabs runs 13-queens
		return nqueensParams{n: 13, parallelDepth: 4}
	}
}

// queensOK reports whether a queen at (row, col) is compatible with the
// partial placement in pos[:row].
func queensOK(pos []int8, row, col int) bool {
	for r := 0; r < row; r++ {
		c := int(pos[r])
		if c == col || c-col == row-r || col-c == row-r {
			return false
		}
	}
	return true
}

// queensSeq counts solutions by sequential backtracking from row.
func queensSeq(n int, pos []int8, row int) int64 {
	if row == n {
		return 1
	}
	var count int64
	for col := 0; col < n; col++ {
		if queensOK(pos, row, col) {
			pos[row] = int8(col)
			count += queensSeq(n, pos, row+1)
		}
	}
	return count
}

// queensTask spawns one task per feasible column while above the
// parallel depth.
func queensTask(rt Runtime, n int, pos []int8, row, parallelDepth int) int64 {
	if row >= parallelDepth {
		local := make([]int8, n)
		copy(local, pos[:row])
		return queensSeq(n, local, row)
	}
	var futures []Future
	for col := 0; col < n; col++ {
		if queensOK(pos, row, col) {
			branch := make([]int8, n)
			copy(branch, pos[:row])
			branch[row] = int8(col)
			futures = append(futures, rt.Async(func() any {
				return queensTask(rt, n, branch, row+1, parallelDepth)
			}))
		}
	}
	var count int64
	for _, f := range futures {
		count += f.Get().(int64)
	}
	return count
}

func nqueensRun(rt Runtime, size Size) int64 {
	p := nqueensSize(size)
	return queensTask(rt, p.n, make([]int8, p.n), 0, p.parallelDepth)
}

// nqueensSolutions holds the known solution counts.
var nqueensSolutions = map[int]int64{
	8: 92, 10: 724, 12: 14200, 13: 73712,
}

func nqueensRef(size Size) int64 {
	return nqueensSolutions[nqueensSize(size).n]
}

// nqueensGraph approximates the irregular spawn tree: branching narrows
// with depth (placements get harder), leaf work is the 28.1 µs
// backtracking kernel with high variance.
func nqueensGraph(size Size) *sim.Graph {
	p := nqueensSize(size)
	if size == Paper {
		// The original parallelises far deeper; seven spawned rows give
		// the >10^5 concurrently live branches that exhaust the
		// thread-per-task baseline.
		p.parallelDepth = 7
	}
	prng := newPRNG(0x0EE5)
	work := grainNs(28.1)
	var build func(row int) *sim.Node
	build = func(row int) *sim.Node {
		if row >= p.parallelDepth {
			// Leaf grain varies x16 across subtrees, like real
			// backtracking ranges.
			w := work/4 + int64(prng.intn(int(work)*2))
			return sim.Leaf(w, taskBytes(nqueensIntensity, w))
		}
		// Feasible columns shrink roughly by row index.
		kids := p.n - row*2
		if kids < 2 {
			kids = 2
		}
		n := &sim.Node{PreNs: work / 8, PostNs: work / 8}
		for i := 0; i < kids; i++ {
			n.Children = append(n.Children, build(row+1))
		}
		return n
	}
	return &sim.Graph{Label: "nqueens", Root: build(0)}
}

// nqueensIntensity: register/stack-resident search, minimal traffic.
const nqueensIntensity = 0.05e9

var nqueensBenchmark = register(&Benchmark{
	Name:            "nqueens",
	Class:           "Recursive Unbalanced",
	Sync:            "none",
	Granularity:     "fine",
	PaperTaskUs:     28.1,
	PaperStdScaling: "fail",
	PaperHPXScaling: "to 20",
	MemIntensity:    nqueensIntensity,
	Run:             nqueensRun,
	RefChecksum:     nqueensRef,
	TaskGraph:       nqueensGraph,
})
