package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/machine"
)

// Mode selects the scheduler model.
type Mode int

const (
	// HPX models the lightweight task runtime: per-core scheduling with
	// at most one running task per core, waiting parents release their
	// core (help-first), per-task overhead from the machine's HPX cost
	// model.
	HPX Mode = iota
	// Std models GCC std::async: one thread per task created at spawn,
	// all live threads share the cores (kernel processor sharing),
	// waiting parents keep their thread alive, creation cost paid by the
	// spawner, failure at the machine's thread ceiling.
	Std
)

// String names the mode as the paper labels its series.
func (m Mode) String() string {
	if m == Std {
		return "C++11 Std"
	}
	return "HPX"
}

// Config parameterises one simulation run.
type Config struct {
	// Machine is the platform model.
	Machine machine.Machine
	// Cores is the number of cores used (strong-scaling x axis).
	Cores int
	// Mode selects the runtime model.
	Mode Mode
}

// Result carries the metrics of one run, matching the performance
// counters the paper reports.
type Result struct {
	// Label echoes the graph label.
	Label string
	// Mode and Cores echo the configuration.
	Mode  Mode
	Cores int

	// MakespanNs is the wall-clock execution time (virtual).
	MakespanNs int64
	// Tasks is the number of tasks executed.
	Tasks int64
	// TaskTimeNs is cumulative task execution time including contention
	// stretching — the /threads/time/cumulative counter.
	TaskTimeNs int64
	// PureWorkNs is cumulative task work at zero contention.
	PureWorkNs int64
	// OverheadNs is cumulative scheduling overhead — the
	// /threads/time/cumulative-overhead counter.
	OverheadNs int64
	// BusyNs is core-time spent executing (task time + overhead).
	BusyNs int64
	// IdleNs is core-time spent without work: Cores*Makespan - Busy.
	IdleNs int64
	// OffcoreBytes is total off-core traffic; divided by makespan it is
	// the bandwidth the paper derives from the PAPI counters.
	OffcoreBytes int64
	// PeakLive is the high-water mark of live threads (std mode) or
	// running+queued tasks (HPX mode).
	PeakLive int64
	// ThreadsLaunched counts thread creations (std mode).
	ThreadsLaunched int64
	// Failed reports resource exhaustion (std mode fine-grained runs).
	Failed bool
	// FailureReason describes the failure.
	FailureReason string
}

// AvgTaskNs is the /threads/time/average counter: mean task duration.
func (r Result) AvgTaskNs() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return float64(r.TaskTimeNs) / float64(r.Tasks)
}

// AvgOverheadNs is the /threads/time/average-overhead counter.
func (r Result) AvgOverheadNs() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return float64(r.OverheadNs) / float64(r.Tasks)
}

// Bandwidth returns the derived off-core bandwidth in bytes/second.
func (r Result) Bandwidth() float64 {
	if r.MakespanNs == 0 {
		return 0
	}
	return float64(r.OffcoreBytes) / (float64(r.MakespanNs) / 1e9)
}

// Makespan returns the execution time as a duration.
func (r Result) Makespan() time.Duration { return time.Duration(r.MakespanNs) }

// IdleRate returns idle core-time as a fraction of total core-time.
func (r Result) IdleRate() float64 {
	total := float64(r.Cores) * float64(r.MakespanNs)
	if total == 0 {
		return 0
	}
	return float64(r.IdleNs) / total
}

// ---------------------------------------------------------------------------
// Internal simulation structures.

type nodeState struct {
	n       *Node
	parent  *nodeState
	pending int // children not yet fully complete
	nextSer int // next child to spawn when n.Serial
}

type phase struct {
	state      *nodeState
	post       bool
	workNs     float64 // contention-free compute
	overhead   float64 // scheduling overhead portion
	contention float64 // execution-time inflation from concurrent scheduling
	bytes      float64
	vStart     float64 // virtual time when started
	vTarget    float64 // virtual completion
	tStart     float64 // real time when started
	heapIx     int
}

func (p *phase) intensity() float64 {
	d := p.workNs + p.overhead + p.contention
	if d <= 0 {
		return 0
	}
	return p.bytes / d // bytes per virtual nanosecond
}

type phaseHeap []*phase

func (h phaseHeap) Len() int           { return len(h) }
func (h phaseHeap) Less(i, j int) bool { return h[i].vTarget < h[j].vTarget }
func (h phaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIx = i; h[j].heapIx = j }
func (h *phaseHeap) Push(x any)        { p := x.(*phase); p.heapIx = len(*h); *h = append(*h, p) }
func (h *phaseHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
func (h phaseHeap) peek() *phase { return h[0] }

type simulator struct {
	cfg Config
	res Result

	v       float64 // virtual progress per running phase
	t       float64 // real time, ns
	running phaseHeap
	ready   []*phase // HPX mode: tasks waiting for a core (LIFO)
	live    int64    // std mode: live threads (running + waiting parents)

	sumIntensity float64 // Σ intensity over running phases
}

// Run executes the graph under the configuration and returns the metrics.
func Run(cfg Config, g *Graph) (Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Cores <= 0 || cfg.Cores > cfg.Machine.TotalCores() {
		return Result{}, fmt.Errorf("sim: %d cores outside platform range 1..%d",
			cfg.Cores, cfg.Machine.TotalCores())
	}
	if g == nil || g.Root == nil {
		return Result{}, fmt.Errorf("sim: empty graph")
	}
	s := &simulator{cfg: cfg}
	s.res.Label = g.Label
	s.res.Mode = cfg.Mode
	s.res.Cores = cfg.Cores

	root := &nodeState{n: g.Root}
	s.spawn(root)
	s.loop()

	s.res.MakespanNs = int64(math.Round(s.t))
	total := float64(cfg.Cores) * s.t
	idle := total - float64(s.res.BusyNs)
	if idle < 0 {
		idle = 0
	}
	s.res.IdleNs = int64(idle)
	return s.res, nil
}

// spawn makes a node's pre phase runnable (queued under HPX, immediately
// running under std) and accounts thread creation for the std model.
// It reports false when the std model failed at the thread ceiling.
func (s *simulator) spawn(st *nodeState) bool {
	ph := &phase{
		state:  st,
		workNs: float64(st.n.PreNs),
		bytes:  float64(st.n.PreBytes),
	}
	if len(st.n.Children) == 0 {
		// A childless node has no join point: its post work is simply
		// the tail of the same task.
		ph.workNs += float64(st.n.PostNs)
		ph.bytes += float64(st.n.PostBytes)
	}
	switch s.cfg.Mode {
	case HPX:
		ph.overhead = s.cfg.Machine.HPXOverheadNs(s.cfg.Cores)
		ph.contention = s.cfg.Machine.HPXContentionNs(s.cfg.Cores)
		s.ready = append(s.ready, ph)
		s.notePeak(int64(len(s.ready)) + int64(len(s.running)))
	case Std:
		s.live++
		s.res.ThreadsLaunched++
		s.notePeak(s.live)
		if ceiling := s.cfg.Machine.StdThreadCeiling; ceiling > 0 && s.live > ceiling {
			s.res.Failed = true
			s.res.FailureReason = fmt.Sprintf(
				"resource exhaustion: %d live threads exceed the %d-thread ceiling (%d MiB stacks)",
				s.live, ceiling, s.cfg.Machine.StdStackBytes>>20)
			return false
		}
		// pthread_create runs in the spawning thread: this node's pre
		// phase pays for creating its children, serialising thread
		// creation in the parent exactly as the baseline does.
		ph.overhead = s.cfg.Machine.StdCreateNs(s.live) * float64(len(st.n.Children))
		s.start(ph)
	}
	return true
}

func (s *simulator) notePeak(v int64) {
	if v > s.res.PeakLive {
		s.res.PeakLive = v
	}
}

// start begins executing a phase at the current virtual time.
func (s *simulator) start(ph *phase) {
	ph.vStart = s.v
	ph.vTarget = s.v + ph.workNs + ph.overhead + ph.contention
	ph.tStart = s.t
	heap.Push(&s.running, ph)
	s.sumIntensity += ph.intensity()
}

// startPost schedules a node's post (merge) phase after its children
// completed.
func (s *simulator) startPost(st *nodeState) {
	ph := &phase{
		state:  st,
		post:   true,
		workNs: float64(st.n.PostNs),
		bytes:  float64(st.n.PostBytes),
	}
	switch s.cfg.Mode {
	case HPX:
		// The continuation costs another scheduling round trip.
		ph.overhead = s.cfg.Machine.HPXOverheadNs(s.cfg.Cores) / 2
		ph.contention = s.cfg.Machine.HPXContentionNs(s.cfg.Cores)
		s.ready = append(s.ready, ph)
	case Std:
		// The parent's thread resumes directly; no new thread.
		s.start(ph)
	}
}

// rate returns the current per-phase progress rate (virtual ns per real
// ns) and the count of phases actually consuming a core.
func (s *simulator) rate() (float64, int) {
	m := len(s.running)
	if m == 0 {
		return 1, 0
	}
	cores := float64(s.cfg.Cores)
	base := 1.0
	occupied := m
	if float64(m) > cores {
		base = cores / float64(m) // kernel processor sharing (std mode)
		occupied = s.cfg.Cores
	}

	// Memory bandwidth saturation: instantaneous demand at the current
	// base rate against the capacity of the sockets in use.
	demand := s.sumIntensity * base * 1e9 // bytes/s
	capacity := s.cfg.Machine.BandwidthCapacity(s.cfg.Cores)
	stretch := 1.0
	if demand > capacity && capacity > 0 {
		stretch = demand / capacity
	}
	// Socket-boundary penalty on memory-bound work.
	if s.cfg.Machine.SpansSockets(s.cfg.Cores) && capacity > 0 {
		share := demand / capacity
		if share > 1 {
			share = 1
		}
		stretch *= 1 + s.cfg.Machine.CrossSocketPenalty*share
	}
	// Oversubscription cost (std mode): context switching and cache
	// pollution grow with log2 of the oversubscription factor.
	if float64(m) > cores && s.cfg.Machine.StdOversubscription > 0 {
		stretch *= 1 + s.cfg.Machine.StdOversubscription*math.Log2(float64(m)/cores)
	}
	return base / stretch, occupied
}

// loop is the main event loop: fill cores, advance to the next
// completion, process it.
func (s *simulator) loop() {
	for {
		if s.res.Failed {
			return
		}
		// HPX: assign ready tasks to free cores, newest first (LIFO, as
		// the local-priority scheduler prefers fresh children).
		if s.cfg.Mode == HPX {
			for len(s.running) < s.cfg.Cores && len(s.ready) > 0 {
				ph := s.ready[len(s.ready)-1]
				s.ready = s.ready[:len(s.ready)-1]
				s.start(ph)
			}
		}
		if len(s.running) == 0 {
			return // quiescent: all work done (ready must be empty too)
		}
		rate, occupied := s.rate()
		next := s.running.peek()
		dv := next.vTarget - s.v
		if dv < 0 {
			dv = 0
		}
		dt := dv / rate
		s.t += dt
		s.v = next.vTarget
		s.res.BusyNs += int64(float64(occupied) * dt)

		heap.Pop(&s.running)
		s.sumIntensity -= next.intensity()
		if s.sumIntensity < 0 {
			s.sumIntensity = 0
		}
		s.complete(next)
	}
}

// complete processes a finished phase: accounting, spawning children or
// releasing the parent.
func (s *simulator) complete(ph *phase) {
	// Attribute the real execution duration to task time vs overhead in
	// proportion to the virtual split.
	dur := s.t - ph.tStart
	virt := ph.workNs + ph.overhead + ph.contention
	if virt > 0 {
		// Contention inflates the observed task duration (the paper's
		// /threads/time/average growth); overhead stays separate.
		s.res.TaskTimeNs += int64(dur * (ph.workNs + ph.contention) / virt)
		s.res.OverheadNs += int64(dur * ph.overhead / virt)
	}
	s.res.PureWorkNs += int64(ph.workNs)
	s.res.OffcoreBytes += int64(ph.bytes)

	st := ph.state
	if !ph.post {
		s.res.Tasks++
		if n := len(st.n.Children); n > 0 {
			st.pending = n
			if st.n.Serial {
				st.nextSer = 1
				s.spawn(&nodeState{n: st.n.Children[0], parent: st})
			} else {
				for _, c := range st.n.Children {
					if !s.spawn(&nodeState{n: c, parent: st}) {
						return
					}
				}
			}
			return // parent waits for children
		}
	}
	// The node is fully complete (leaf pre phase, or post phase done).
	s.finish(st)
}

// finish propagates completion to the parent chain.
func (s *simulator) finish(st *nodeState) {
	if s.cfg.Mode == Std {
		s.live--
	}
	p := st.parent
	if p == nil {
		return
	}
	p.pending--
	if p.n.Serial && p.nextSer < len(p.n.Children) {
		c := p.n.Children[p.nextSer]
		p.nextSer++
		s.spawn(&nodeState{n: c, parent: p})
		return
	}
	if p.pending == 0 {
		// The parent stayed live (std) while waiting; its thread simply
		// resumes with the post phase.
		s.startPost(p)
	}
}
