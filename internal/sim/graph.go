// Package sim is a discrete-event simulator of task-parallel execution on
// a modelled machine (package machine). It executes fork/join task graphs
// under two scheduler models — the lightweight work-queue runtime the
// paper studies (HPX) and the thread-per-task std::async baseline — in
// virtual time, and reports the same metrics the paper's performance
// counters expose: task counts, cumulative and average task time,
// scheduling overhead, idle time and off-core memory traffic.
//
// The simulator is the documented substitution (DESIGN.md §5) for the
// paper's 20-core Ivy Bridge node: the build host cannot exhibit real
// parallel speedup, but the studied effects are scheduling and contention
// phenomena that the model reproduces in shape.
//
// The execution model is uniform-rate processor sharing in virtual time:
// all concurrently running phases progress at the same rate, set by core
// availability, memory-bandwidth saturation, socket-boundary penalties
// and (for the baseline) oversubscription. Completion order within the
// running set therefore depends only on remaining virtual work, which
// lets one priority queue drive the whole simulation.
package sim

// Node is one task in a fork/join graph. Executing a node runs PreNs of
// work, spawns the children, waits for them (the parent's worker is free
// to run other tasks meanwhile under the HPX model, but the parent's
// thread stays live under the std model), then runs PostNs of merge work.
type Node struct {
	// PreNs is compute before spawning children, in reference-core
	// nanoseconds.
	PreNs int64
	// PostNs is compute after joining children.
	PostNs int64
	// PreBytes and PostBytes are the off-core memory traffic generated
	// by the two phases.
	PreBytes  int64
	PostBytes int64
	// Children are spawned after the pre phase completes.
	Children []*Node
	// Serial makes the children execute one after another (each child's
	// whole subtree completes before the next child starts) instead of
	// concurrently — the join-per-phase structure of loop-like
	// benchmarks (SparseLU's elimination steps, Pyramids' time slabs).
	Serial bool
}

// Leaf builds a childless node.
func Leaf(workNs, bytes int64) *Node {
	return &Node{PreNs: workNs, PreBytes: bytes}
}

// Graph is a rooted fork/join task graph.
type Graph struct {
	// Label names the workload in reports.
	Label string
	// Root is executed first.
	Root *Node
}

// Stats summarises a graph's static properties.
type Stats struct {
	// Tasks is the number of nodes.
	Tasks int64
	// WorkNs is the total compute (the one-core execution time without
	// overheads).
	WorkNs int64
	// Bytes is the total off-core traffic.
	Bytes int64
	// CriticalPathNs is the longest dependency chain, bounding speedup.
	CriticalPathNs int64
	// Depth is the deepest nesting level.
	Depth int
}

// Stats computes the graph's static properties iteratively (graphs reach
// millions of nodes, so no recursion).
func (g *Graph) Stats() Stats {
	var s Stats
	if g.Root == nil {
		return s
	}
	type frame struct {
		n     *Node
		depth int
	}
	// First pass: counts, sums, depth.
	stack := []frame{{g.Root, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.Tasks++
		s.WorkNs += f.n.PreNs + f.n.PostNs
		s.Bytes += f.n.PreBytes + f.n.PostBytes
		if f.depth > s.Depth {
			s.Depth = f.depth
		}
		for _, c := range f.n.Children {
			stack = append(stack, frame{c, f.depth + 1})
		}
	}
	s.CriticalPathNs = criticalPath(g.Root)
	return s
}

// criticalPath computes the longest dependency chain with an explicit
// post-order traversal: pre -> max(child paths) -> post for concurrent
// children, pre -> sum(child paths) -> post for serial ones.
func criticalPath(root *Node) int64 {
	type frame struct {
		n       *Node
		childIx int
		acc     int64 // max (parallel) or sum (serial) of child paths
	}
	stack := []frame{{n: root}}
	var result int64
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.childIx < len(f.n.Children) {
			child := f.n.Children[f.childIx]
			f.childIx++
			stack = append(stack, frame{n: child})
			continue
		}
		total := f.n.PreNs + f.acc + f.n.PostNs
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			result = total
			break
		}
		parent := &stack[len(stack)-1]
		if parent.n.Serial {
			parent.acc += total
		} else if total > parent.acc {
			parent.acc = total
		}
	}
	return result
}
