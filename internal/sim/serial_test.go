package sim

import (
	"testing"

	"repro/internal/core"
)

func TestSerialNodeSequencing(t *testing.T) {
	// Three serial stages of 4 parallel leaves each on 4 cores: the
	// makespan must be 3 x leaf time (stages cannot overlap), not 1x.
	m := flatMachine()
	stage := func() *Node {
		n := &Node{}
		for i := 0; i < 4; i++ {
			n.Children = append(n.Children, Leaf(1000, 0))
		}
		return n
	}
	g := &Graph{Root: &Node{Serial: true, Children: []*Node{stage(), stage(), stage()}}}
	r, err := Run(Config{Machine: m, Cores: 4, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanNs != 3000 {
		t.Fatalf("serial stages makespan = %d want 3000", r.MakespanNs)
	}
	// The same graph without Serial overlaps fully: 12 leaves on 4
	// cores = 3 rounds... but all stages start together so the three
	// stage parents' leaves interleave: still 12000/4 = 3000 of work,
	// yet with 12 concurrent leaves the greedy schedule also needs
	// 3000. Distinguish with 2 stages of 4 leaves on 8 cores instead.
	g2 := &Graph{Root: &Node{Children: []*Node{stage(), stage()}}}
	r2, err := Run(Config{Machine: m, Cores: 8, Mode: HPX}, g2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MakespanNs != 1000 {
		t.Fatalf("parallel stages makespan = %d want 1000", r2.MakespanNs)
	}
	g3 := &Graph{Root: &Node{Serial: true, Children: []*Node{stage(), stage()}}}
	r3, err := Run(Config{Machine: m, Cores: 8, Mode: HPX}, g3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.MakespanNs != 2000 {
		t.Fatalf("serial stages on wide machine = %d want 2000", r3.MakespanNs)
	}
}

func TestSerialCriticalPath(t *testing.T) {
	leafA, leafB := Leaf(100, 0), Leaf(200, 0)
	serial := &Graph{Root: &Node{Serial: true, PreNs: 10, PostNs: 20,
		Children: []*Node{leafA, leafB}}}
	if got := serial.Stats().CriticalPathNs; got != 10+100+200+20 {
		t.Fatalf("serial critical path = %d", got)
	}
	parallel := &Graph{Root: &Node{PreNs: 10, PostNs: 20,
		Children: []*Node{Leaf(100, 0), Leaf(200, 0)}}}
	if got := parallel.Stats().CriticalPathNs; got != 10+200+20 {
		t.Fatalf("parallel critical path = %d", got)
	}
}

func TestStdLiveAccountingWaitersStayLive(t *testing.T) {
	// A deep chain: every parent waits on one child. Under the std
	// model all of them hold threads simultaneously, so peak live =
	// depth; under HPX the waiting parents release their core.
	m := flatMachine()
	depth := 60
	node := Leaf(1000, 0)
	for i := 0; i < depth; i++ {
		node = &Node{PreNs: 100, PostNs: 100, Children: []*Node{node}}
	}
	g := &Graph{Root: node}
	rStd, err := Run(Config{Machine: m, Cores: 2, Mode: Std}, g)
	if err != nil {
		t.Fatal(err)
	}
	if rStd.PeakLive != int64(depth)+1 {
		t.Fatalf("std peak live = %d want %d", rStd.PeakLive, depth+1)
	}
	// The ceiling kills exactly this pattern.
	limited := m
	limited.StdThreadCeiling = 30
	rFail, err := Run(Config{Machine: limited, Cores: 2, Mode: Std}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !rFail.Failed {
		t.Fatal("chain deeper than the ceiling did not fail")
	}
	// HPX executes the same chain with bounded live state.
	rHPX, err := Run(Config{Machine: limited, Cores: 2, Mode: HPX}, g)
	if err != nil || rHPX.Failed {
		t.Fatalf("HPX failed on the chain: %v %v", rHPX.FailureReason, err)
	}
}

func TestStdCreationChargedToParent(t *testing.T) {
	// One root spawning 100 leaves: the creation cost is serialised in
	// the root, so the std makespan includes 100 x create even on many
	// cores.
	m := flatMachine()
	m.StdThreadCreateNs = 10000
	root := &Node{}
	for i := 0; i < 100; i++ {
		root.Children = append(root.Children, Leaf(1000, 0))
	}
	g := &Graph{Root: root}
	r, err := Run(Config{Machine: m, Cores: 20, Mode: Std}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanNs < 100*10000 {
		t.Fatalf("makespan %d misses the serialised creation cost", r.MakespanNs)
	}
	if r.OverheadNs < 100*10000 {
		t.Fatalf("overhead %d misses the creation cost", r.OverheadNs)
	}
}

func TestContentionInflatesTaskTimeOnly(t *testing.T) {
	m := flatMachine()
	m.HPXLocalContentionNs = 100
	g := fanout(64, 1000)
	r1, err := Run(Config{Machine: m, Cores: 1, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(Config{Machine: m, Cores: 8, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgTaskNs() >= r8.AvgTaskNs() {
		t.Fatalf("task duration did not grow with cores: %v -> %v",
			r1.AvgTaskNs(), r8.AvgTaskNs())
	}
	// Contention lands in task time, not overhead, and pure work is
	// untouched.
	if r8.PureWorkNs != r1.PureWorkNs {
		t.Fatal("pure work changed with contention")
	}
	if r8.OverheadNs != 0 {
		t.Fatalf("contention leaked into overhead: %d", r8.OverheadNs)
	}
}

func TestResultRegisterCounters(t *testing.T) {
	g := fanout(16, 1000)
	r, err := Run(Config{Machine: flatMachine(), Cores: 4, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if err := r.RegisterCounters(reg, 7); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Evaluate("/threads{locality#7/total}/count/cumulative", false)
	if err != nil || v.Raw != r.Tasks {
		t.Fatalf("cumulative = %+v (%v)", v, err)
	}
	avg, err := reg.Evaluate("/threads{locality#7/total}/time/average", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := avg.Float64(); got != r.AvgTaskNs() {
		t.Fatalf("avg = %v want %v", got, r.AvgTaskNs())
	}
	up, _ := reg.Evaluate("/runtime{locality#7/total}/uptime", false)
	if up.Raw != r.MakespanNs {
		t.Fatalf("uptime = %d want %d", up.Raw, r.MakespanNs)
	}
	// Meta counters compose over simulated values like live ones.
	ratio, err := reg.Evaluate(
		"/arithmetics/divide@/threads{locality#7/total}/time/cumulative-overhead,"+
			"/threads{locality#7/total}/time/cumulative", false)
	if err != nil {
		t.Fatal(err)
	}
	_ = ratio
}
