package sim

import (
	"repro/internal/core"
)

// RegisterCounters exposes a completed run's metrics through the same
// counter framework and names the live runtime uses — the design's
// "one framework, two backends" property. Tools built on core.Registry
// (the perfcli printer, remote monitors, meta counters) consume
// simulated and real measurements identically.
//
// The locality id distinguishes multiple registered results in one
// registry (e.g. one locality per core count of a sweep).
func (r Result) RegisterCounters(reg *core.Registry, locality int64) error {
	specs := []struct {
		object, counter, help, unit string
		value                       int64
	}{
		{"threads", "count/cumulative", "tasks executed (simulated)", core.UnitEvents, r.Tasks},
		{"threads", "time/cumulative", "cumulative task time (simulated)", core.UnitNanoseconds, r.TaskTimeNs},
		{"threads", "time/cumulative-overhead", "cumulative scheduling overhead (simulated)", core.UnitNanoseconds, r.OverheadNs},
		{"threads", "time/idle", "cumulative idle core time (simulated)", core.UnitNanoseconds, r.IdleNs},
		{"threads", "count/peak-live", "peak live tasks/threads (simulated)", core.UnitEvents, r.PeakLive},
		{"runtime", "uptime", "makespan (simulated)", core.UnitNanoseconds, r.MakespanNs},
	}
	for _, s := range specs {
		s := s
		name := core.Name{Object: s.object, Counter: s.counter}.
			WithInstances(core.LocalityInstance(locality, "total", -1)...)
		info := core.Info{TypeName: "/" + s.object + "/" + s.counter,
			HelpText: s.help, Unit: s.unit, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0,
			func() int64 { return s.value }, nil)); err != nil {
			return err
		}
	}
	// Ratio counters reuse the live runtime's Value convention: sum in
	// Raw, count in Scaling.
	ratios := []struct {
		counter, help string
		num, den      int64
	}{
		{"time/average", "average task duration (simulated)", r.TaskTimeNs, r.Tasks},
		{"time/average-overhead", "average per-task overhead (simulated)", r.OverheadNs, r.Tasks},
	}
	for _, s := range ratios {
		s := s
		name := core.Name{Object: "threads", Counter: s.counter}.
			WithInstances(core.LocalityInstance(locality, "total", -1)...)
		info := core.Info{TypeName: "/threads/" + s.counter, HelpText: s.help,
			Unit: core.UnitNanoseconds, Version: "1.0"}
		den := s.den
		if den == 0 {
			den = 1
		}
		num := s.num
		if err := reg.Register(core.NewFuncCounter(name, info, den,
			func() int64 { return num }, nil)); err != nil {
			return err
		}
	}
	// Idle rate in the live counter's 0.01% units.
	idleName := core.Name{Object: "threads", Counter: "idle-rate"}.
		WithInstances(core.LocalityInstance(locality, "total", -1)...)
	idleInfo := core.Info{TypeName: "/threads/idle-rate",
		HelpText: "idle core time over wall time (simulated)", Unit: "0.01%", Version: "1.0"}
	idle := int64(r.IdleRate() * 10000)
	return reg.Register(core.NewFuncCounter(idleName, idleInfo, 0,
		func() int64 { return idle }, nil))
}
