package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// testMachine is an Ivy Bridge with contention knobs zeroed where tests
// need exact arithmetic.
func flatMachine() machine.Machine {
	m := machine.IvyBridge()
	m.SocketBandwidth = 1e18 // effectively infinite
	m.CrossSocketPenalty = 0
	m.HPXTaskOverheadNs = 0
	m.HPXStealContention = 0
	m.HPXCrossSocketOverhead = 1
	m.HPXLocalContentionNs = 0
	m.HPXRemoteContentionNs = 0
	m.StdThreadCreateNs = 0
	m.StdCreateContention = 0
	m.StdOversubscription = 0
	return m
}

// fanout builds a root with n leaf children of the given work.
func fanout(n int, workNs int64) *Graph {
	root := &Node{}
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, Leaf(workNs, 0))
	}
	return &Graph{Label: "fanout", Root: root}
}

// binTree builds a balanced binary recursion of the given depth with
// leaf work and per-level divide/merge work.
func binTree(depth int, leafNs, preNs, postNs int64) *Node {
	if depth == 0 {
		return Leaf(leafNs, 0)
	}
	return &Node{
		PreNs:    preNs,
		PostNs:   postNs,
		Children: []*Node{binTree(depth-1, leafNs, preNs, postNs), binTree(depth-1, leafNs, preNs, postNs)},
	}
}

func TestGraphStats(t *testing.T) {
	g := &Graph{Root: binTree(3, 100, 10, 20)}
	s := g.Stats()
	if s.Tasks != 15 { // 2^4 - 1
		t.Fatalf("tasks = %d", s.Tasks)
	}
	wantWork := int64(8*100 + 7*(10+20))
	if s.WorkNs != wantWork {
		t.Fatalf("work = %d want %d", s.WorkNs, wantWork)
	}
	if s.Depth != 4 {
		t.Fatalf("depth = %d", s.Depth)
	}
	// Critical path: 3 levels of (10 .. 20) around one 100ns leaf.
	if want := int64(3*(10+20) + 100); s.CriticalPathNs != want {
		t.Fatalf("critical path = %d want %d", s.CriticalPathNs, want)
	}
	if (&Graph{}).Stats() != (Stats{}) {
		t.Fatal("empty graph stats nonzero")
	}
}

func TestPerfectScalingFlatMachine(t *testing.T) {
	g := fanout(100, 1000_000)
	m := flatMachine()
	r1, err := Run(Config{Machine: m, Cores: 1, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MakespanNs != 100*1000_000 {
		t.Fatalf("1-core makespan = %d", r1.MakespanNs)
	}
	for _, k := range []int{2, 4, 10, 20} {
		rk, err := Run(Config{Machine: m, Cores: k, Mode: HPX}, g)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(r1.MakespanNs) / float64(k)
		if got := float64(rk.MakespanNs); math.Abs(got-want)/want > 0.01 {
			t.Fatalf("%d cores: makespan %v want %v (perfect scaling on flat machine)", k, got, want)
		}
	}
}

func TestTaskAccounting(t *testing.T) {
	g := fanout(10, 500)
	r, err := Run(Config{Machine: flatMachine(), Cores: 2, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks != 11 { // root + 10 leaves
		t.Fatalf("tasks = %d", r.Tasks)
	}
	if r.PureWorkNs != 5000 {
		t.Fatalf("pure work = %d", r.PureWorkNs)
	}
	if r.OverheadNs != 0 {
		t.Fatalf("overhead on zero-overhead machine = %d", r.OverheadNs)
	}
}

func TestOverheadAccounting(t *testing.T) {
	m := flatMachine()
	m.HPXTaskOverheadNs = 100
	g := fanout(10, 1000)
	r, err := Run(Config{Machine: m, Cores: 1, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	// 11 pre phases with 100ns overhead each, plus 1 continuation (root
	// post) at half overhead.
	wantOH := int64(11*100 + 50)
	if r.OverheadNs != wantOH {
		t.Fatalf("overhead = %d want %d", r.OverheadNs, wantOH)
	}
	if r.MakespanNs != 10*1000+wantOH {
		t.Fatalf("makespan = %d", r.MakespanNs)
	}
	if got := r.AvgOverheadNs(); math.Abs(got-float64(wantOH)/11) > 1 {
		t.Fatalf("avg overhead = %v", got)
	}
}

func TestWorkConservation(t *testing.T) {
	// Invariant: busy + idle == cores * makespan, and busy >= work.
	g := &Graph{Root: binTree(8, 2000, 100, 200)}
	for _, mode := range []Mode{HPX, Std} {
		for _, k := range []int{1, 3, 10, 20} {
			r, err := Run(Config{Machine: machine.IvyBridge(), Cores: k, Mode: mode}, g)
			if err != nil {
				t.Fatal(err)
			}
			total := int64(k) * r.MakespanNs
			if diff := total - (r.BusyNs + r.IdleNs); diff < -total/100 || diff > total/100 {
				t.Fatalf("%v %d cores: busy %d + idle %d != total %d", mode, k, r.BusyNs, r.IdleNs, total)
			}
			if r.TaskTimeNs < r.PureWorkNs {
				t.Fatalf("%v %d cores: stretched task time %d < pure work %d", mode, k, r.TaskTimeNs, r.PureWorkNs)
			}
			if r.MakespanNs <= 0 {
				t.Fatalf("%v %d cores: makespan %d", mode, k, r.MakespanNs)
			}
		}
	}
}

func TestMakespanLowerBounds(t *testing.T) {
	// Makespan >= max(work/cores, critical path) on any machine.
	g := &Graph{Root: binTree(6, 5000, 500, 500)}
	st := g.Stats()
	for _, k := range []int{1, 2, 5, 20} {
		r, err := Run(Config{Machine: machine.IvyBridge(), Cores: k, Mode: HPX}, g)
		if err != nil {
			t.Fatal(err)
		}
		lb := st.WorkNs / int64(k)
		if st.CriticalPathNs > lb {
			lb = st.CriticalPathNs
		}
		if r.MakespanNs < lb {
			t.Fatalf("%d cores: makespan %d below bound %d", k, r.MakespanNs, lb)
		}
	}
}

func TestStdThreadCeilingFailure(t *testing.T) {
	m := flatMachine()
	m.StdThreadCeiling = 50
	g := fanout(100, 1000)
	r, err := Run(Config{Machine: m, Cores: 4, Mode: Std}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Failed {
		t.Fatal("std run with 100 concurrent threads did not fail at ceiling 50")
	}
	if r.FailureReason == "" || r.PeakLive <= 50 {
		t.Fatalf("failure detail: %q peak %d", r.FailureReason, r.PeakLive)
	}
	// HPX mode with the same graph must succeed: it never exceeds the
	// worker count in live execution.
	rh, err := Run(Config{Machine: m, Cores: 4, Mode: HPX}, g)
	if err != nil || rh.Failed {
		t.Fatalf("HPX mode failed: %+v %v", rh, err)
	}
}

func TestStdCreationCostHurtsFineGrain(t *testing.T) {
	// With realistic creation costs, fine-grained tasks run far slower
	// under std than HPX; coarse tasks roughly tie. This is the paper's
	// headline observation.
	m := machine.IvyBridge()
	fine := fanout(10000, 1000)      // 1 µs tasks
	coarse := fanout(100, 5_000_000) // 5 ms tasks
	rFineStd, err := Run(Config{Machine: m, Cores: 10, Mode: Std}, fine)
	if err != nil {
		t.Fatal(err)
	}
	rFineHPX, err := Run(Config{Machine: m, Cores: 10, Mode: HPX}, fine)
	if err != nil {
		t.Fatal(err)
	}
	if rFineStd.Failed || rFineHPX.Failed {
		t.Fatalf("unexpected failure: std=%v hpx=%v", rFineStd.FailureReason, rFineHPX.FailureReason)
	}
	if ratio := float64(rFineStd.MakespanNs) / float64(rFineHPX.MakespanNs); ratio < 3 {
		t.Fatalf("fine-grained std/hpx ratio = %.2f, want >= 3", ratio)
	}
	rCoarseStd, err := Run(Config{Machine: m, Cores: 10, Mode: Std}, coarse)
	if err != nil {
		t.Fatal(err)
	}
	rCoarseHPX, err := Run(Config{Machine: m, Cores: 10, Mode: HPX}, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(rCoarseStd.MakespanNs) / float64(rCoarseHPX.MakespanNs); ratio > 1.2 {
		t.Fatalf("coarse-grained std/hpx ratio = %.2f, want ~1", ratio)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Memory-bound tasks: per-core bandwidth demand beyond capacity must
	// stretch execution so delivered bandwidth stays at capacity.
	m := flatMachine()
	m.SocketBandwidth = 10e9  // 10 GB/s per socket
	work := int64(1_000_000)  // 1 ms
	bytes := int64(5_000_000) // 5 MB per task -> 5 GB/s per core demand
	root := &Node{}
	for i := 0; i < 200; i++ {
		root.Children = append(root.Children, Leaf(work, bytes))
	}
	g := &Graph{Label: "membound", Root: root}

	r1, err := Run(Config{Machine: m, Cores: 1, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	if bw := r1.Bandwidth(); math.Abs(bw-5e9)/5e9 > 0.05 {
		t.Fatalf("1-core bandwidth = %.2g want 5e9", bw)
	}
	r4, err := Run(Config{Machine: m, Cores: 4, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	// Demand 20 GB/s > 10 GB/s capacity: delivered bandwidth pins at
	// capacity and makespan stretches ~2x over perfect scaling.
	if bw := r4.Bandwidth(); math.Abs(bw-10e9)/10e9 > 0.05 {
		t.Fatalf("4-core bandwidth = %.3g want ~10e9 (capacity)", bw)
	}
	if perfect := r1.MakespanNs / 4; float64(r4.MakespanNs) < 1.8*float64(perfect) {
		t.Fatalf("4-core makespan %d did not stretch (perfect %d)", r4.MakespanNs, perfect)
	}
	// Task time inflates versus pure work under contention — the
	// paper's observed task-duration growth with core count.
	if r4.TaskTimeNs <= r4.PureWorkNs {
		t.Fatal("task time did not stretch under bandwidth contention")
	}
}

func TestSocketBoundaryPenalty(t *testing.T) {
	// A memory-bound workload crossing the socket boundary gains
	// capacity (2 sockets) but pays the NUMA penalty: going from 10 to
	// 11 cores must not scale perfectly.
	m := flatMachine()
	m.SocketBandwidth = 8e9
	m.CrossSocketPenalty = 0.4
	root := &Node{}
	for i := 0; i < 400; i++ {
		root.Children = append(root.Children, Leaf(1_000_000, 2_000_000))
	}
	g := &Graph{Root: root}
	r10, err := Run(Config{Machine: m, Cores: 10, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	r11, err := Run(Config{Machine: m, Cores: 11, Mode: HPX}, g)
	if err != nil {
		t.Fatal(err)
	}
	improvement := float64(r10.MakespanNs) / float64(r11.MakespanNs)
	if improvement > 1.08 {
		t.Fatalf("crossing the socket boundary improved makespan by %.2fx", improvement)
	}
}

func TestConfigErrors(t *testing.T) {
	g := fanout(1, 100)
	m := machine.IvyBridge()
	if _, err := Run(Config{Machine: m, Cores: 0, Mode: HPX}, g); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := Run(Config{Machine: m, Cores: 21, Mode: HPX}, g); err == nil {
		t.Error("21 cores accepted on a 20-core machine")
	}
	if _, err := Run(Config{Machine: m, Cores: 1, Mode: HPX}, &Graph{}); err == nil {
		t.Error("empty graph accepted")
	}
	bad := m
	bad.Sockets = 0
	if _, err := Run(Config{Machine: bad, Cores: 1, Mode: HPX}, g); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestModeString(t *testing.T) {
	if HPX.String() != "HPX" || Std.String() != "C++11 Std" {
		t.Fatalf("mode strings: %q %q", HPX, Std)
	}
}

// TestSimInvariantsQuick drives random graphs through both modes and
// checks structural invariants.
func TestSimInvariantsQuick(t *testing.T) {
	var build func(r *rand.Rand, depth int) *Node
	build = func(r *rand.Rand, depth int) *Node {
		n := &Node{
			PreNs:    int64(r.Intn(10000)),
			PostNs:   int64(r.Intn(2000)),
			PreBytes: int64(r.Intn(100000)),
		}
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				n.Children = append(n.Children, build(r, depth-1))
			}
		}
		return n
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(&Graph{Root: build(r, 5)})
			args[1] = reflect.ValueOf(1 + r.Intn(20))
		},
	}
	prop := func(g *Graph, cores int) bool {
		st := g.Stats()
		for _, mode := range []Mode{HPX, Std} {
			r, err := Run(Config{Machine: machine.IvyBridge(), Cores: cores, Mode: mode}, g)
			if err != nil {
				t.Logf("Run: %v", err)
				return false
			}
			if r.Failed {
				continue
			}
			if r.Tasks != st.Tasks {
				t.Logf("%v: tasks %d != graph %d", mode, r.Tasks, st.Tasks)
				return false
			}
			if r.PureWorkNs != st.WorkNs {
				t.Logf("%v: work %d != graph %d", mode, r.PureWorkNs, st.WorkNs)
				return false
			}
			if r.OffcoreBytes != st.Bytes {
				t.Logf("%v: bytes %d != graph %d", mode, r.OffcoreBytes, st.Bytes)
				return false
			}
			if r.MakespanNs < st.WorkNs/int64(cores) {
				t.Logf("%v: makespan below work bound", mode)
				return false
			}
			if r.BusyNs > int64(cores)*r.MakespanNs+int64(cores) {
				t.Logf("%v: busy exceeds cores x makespan", mode)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedMetrics(t *testing.T) {
	r := Result{Tasks: 4, TaskTimeNs: 4000, OverheadNs: 400, MakespanNs: 2000,
		OffcoreBytes: 4000, Cores: 2, IdleNs: 1000}
	if r.AvgTaskNs() != 1000 || r.AvgOverheadNs() != 100 {
		t.Fatal("averages")
	}
	if bw := r.Bandwidth(); bw != 4000/(2000e-9) {
		t.Fatalf("bandwidth = %v", bw)
	}
	if ir := r.IdleRate(); ir != 0.25 {
		t.Fatalf("idle rate = %v", ir)
	}
	var zero Result
	if zero.AvgTaskNs() != 0 || zero.AvgOverheadNs() != 0 || zero.Bandwidth() != 0 || zero.IdleRate() != 0 {
		t.Fatal("zero-result derived metrics must be zero")
	}
}
