// Command repro regenerates the paper's tables and figures from the
// modelled Ivy Bridge platform and the Inncabs task graphs.
//
// Usage:
//
//	repro                       # regenerate everything at the default size
//	repro -only fig5            # one experiment
//	repro -size paper           # the paper-scale workloads (slower)
//	repro -list                 # list experiment ids
//	repro -out results.txt      # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/inncabs"
	"repro/internal/machine"
)

func main() {
	var (
		only     = flag.String("only", "", "regenerate a single experiment (e.g. table5, fig11)")
		sizeStr  = flag.String("size", "medium", "workload size: test, small, medium, paper")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		outPath  = flag.String("out", "", "write output to this file instead of stdout")
		csvDir   = flag.String("csv", "", "also export the raw figure data as CSV files into this directory")
		machName = flag.String("machine", "ivybridge", "platform model: ivybridge (the paper's node) or epyc")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Printf("%-8s %s\n", id, bench.Describe(id))
		}
		return
	}
	size, err := inncabs.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	m, ok := machine.Presets()[*machName]
	if !ok {
		fatal(fmt.Errorf("unknown machine %q (have ivybridge, epyc)", *machName))
	}
	fmt.Fprintf(out, "Reproduction platform model: %s\n\n", m)
	if *csvDir != "" {
		files, err := bench.ExportAllCSV(*csvDir, size, m)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repro: wrote %d CSV files to %s\n", len(files), *csvDir)
	}
	if *only != "" {
		if err := bench.Run(out, *only, size, m); err != nil {
			fatal(err)
		}
		return
	}
	if err := bench.RunAll(out, size, m); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
