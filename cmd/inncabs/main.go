// Command inncabs runs one benchmark of the ported Inncabs suite for
// real — on the lightweight task runtime or the thread-per-task
// baseline — with the paper's performance-counter command line attached.
//
// Usage:
//
//	inncabs -bench sort -runtime hpx -threads 4 \
//	    -print-counter '/threads{locality#0/total}/count/cumulative' \
//	    -print-counter '/threads{locality#0/total}/time/average'
//	inncabs -bench fib -runtime std
//	inncabs -list-benchmarks
//	inncabs -bench sort -list-counters
//
// The run verifies the benchmark's checksum against the sequential
// reference and reports the execution-time summary over the configured
// number of samples (the paper takes 20 and reports medians).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/inncabs"
	"repro/internal/parcel"
	"repro/internal/perfcli"
	"repro/internal/stats"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

func main() {
	var (
		benchName = flag.String("bench", "fib", "benchmark name")
		rtName    = flag.String("runtime", "hpx", "runtime: hpx or std")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads (hpx runtime)")
		sizeStr   = flag.String("size", "small", "workload size: test, small, medium, paper, huge")
		samples   = flag.Int("samples", 3, "measurement samples (paper protocol: 20)")
		policyStr = flag.String("policy", "async", "launch policy: async, sync, fork, deferred, optional")
		adaptive  = flag.Bool("adaptive", false, "counter-driven adaptive inlining: run children inline when their estimated grain is below the runtime's measured spawn cost (hpx runtime; see /runtime{...}/grain/* counters)")
		listBench = flag.Bool("list-benchmarks", false, "list benchmarks and exit")
		all       = flag.Bool("all", false, "run and verify the whole suite, print a summary table")
		tracePath = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the task schedule to this file (hpx runtime)")
		profile   = flag.Bool("profile", false, "trace the run and print its DAG profile: work, span (critical path), parallelism, top spawn sites (hpx runtime)")
		serveAddr = flag.String("serve", "", "serve the counter registry over parcel at this address for remote monitors (e.g. 127.0.0.1:7110)")
		deadline  = flag.Duration("deadline", 0, "cancel the measurement after this long (0 = unbounded); cancellable benchmarks stop cooperatively")
		watchdog  = flag.Bool("watchdog", false, "run the runtime health watchdog and log events to stderr (hpx runtime)")

		httpAddr   = flag.String("http", "", "serve live telemetry over HTTP at this address (/metrics, /series, and /flight with -flight)")
		budgetPct  = flag.Float64("budget", 0, "sampling overhead budget, percent of one core (enables the self-regulating collector; 0 = off)")
		flightOn   = flag.Bool("flight", false, "arm the anomaly-triggered flight recorder, fed by the watchdog (hpx runtime)")
		flightDump = flag.String("flight-dump", "", "write the flight-recorder ring as JSON to this file at exit (implies -flight; \"-\" = stdout)")
		telemIval  = flag.Duration("telemetry-interval", 100*time.Millisecond, "base sampling interval for -http/-budget/-flight")
		stallThr   = flag.Duration("stall-threshold", 0, "watchdog stall threshold (0 = 1s default)")
		injStall   = flag.Duration("inject-stall", 0, "fault injection: run one extra task that sleeps this long, tripping the watchdog (hpx runtime; testing)")
	)
	opts := perfcli.Bind(flag.CommandLine)
	flag.Parse()

	// A task panic surfaces at the joining Get as a *taskrt.PanicError
	// carrying the panic value and the worker's stack at panic time —
	// report it as a diagnosis instead of an anonymous crash.
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*taskrt.PanicError)
			if !ok {
				panic(r)
			}
			fmt.Fprintf(os.Stderr, "inncabs: benchmark task panicked: %v\ntask stack:\n%s", pe.Value, pe.Stack)
			os.Exit(1)
		}
	}()

	if *listBench {
		for _, b := range inncabs.All() {
			fmt.Printf("%-10s %-22s sync=%-18s grain=%s (%.2f µs)\n",
				b.Name, b.Class, b.Sync, b.Granularity, b.PaperTaskUs)
		}
		return
	}
	var b *inncabs.Benchmark
	var err error
	if !*all {
		if b, err = inncabs.ByName(*benchName); err != nil {
			fatal(err)
		}
	}
	size, err := inncabs.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	policy, err := taskrt.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}

	reg := core.NewRegistry()
	var rt inncabs.Runtime
	var trt *taskrt.Runtime
	switch *rtName {
	case "hpx":
		rtOpts := []taskrt.Option{taskrt.WithWorkers(*threads)}
		if *adaptive {
			rtOpts = append(rtOpts, taskrt.WithAdaptiveInlining())
		}
		trt = taskrt.New(rtOpts...)
		defer trt.Shutdown()
		if err := trt.RegisterCounters(reg); err != nil {
			fatal(err)
		}
		if *tracePath != "" || *profile {
			trt.EnableTracing(0)
			defer func() {
				events, dropped := trt.TraceEvents()
				if *tracePath != "" {
					f, err := os.Create(*tracePath)
					if err != nil {
						fatal(err)
					}
					defer f.Close()
					if err := taskrt.WriteChromeTrace(f, events); err != nil {
						fatal(err)
					}
					fmt.Printf("trace: %d task events written to %s (%d dropped)\n",
						len(events), *tracePath, dropped)
				}
				if *profile {
					a := taskrt.AnalyzeTrace(events)
					fmt.Printf("\nDAG profile (%d events, %d dropped):\n%s",
						len(events), dropped, a.Summary(10))
				}
			}()
		}
		hrt := inncabs.NewHPX(trt)
		hrt.Policy = policy
		rt = hrt
	case "std":
		srt := stdrt.New()
		if err := srt.RegisterCounters(reg); err != nil {
			fatal(err)
		}
		rt = inncabs.NewStd(srt)
	default:
		fatal(fmt.Errorf("unknown runtime %q (hpx or std)", *rtName))
	}
	if trt == nil {
		if *watchdog || *flightOn || *injStall > 0 {
			fmt.Fprintln(os.Stderr, "inncabs: -watchdog/-flight/-inject-stall only apply to the hpx runtime; ignored")
		}
		if *tracePath != "" || *profile {
			fmt.Fprintln(os.Stderr, "inncabs: -trace/-profile only apply to the hpx runtime; ignored")
		}
	}
	if *serveAddr != "" {
		srv, err := parcel.Serve(*serveAddr, reg, 0)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "inncabs: serving counters on %s\n", srv.Addr())
	}

	session, err := opts.Start(reg)
	if err != nil {
		fatal(err)
	}
	if opts.ListCounters {
		return
	}

	// Live telemetry: budgeted sampling, flight recorder, HTTP export.
	plane, err := newTelemetryPlane(reg, telemetryOptions{
		HTTPAddr:  *httpAddr,
		BudgetPct: *budgetPct,
		Flight:    *flightOn && trt != nil,
		DumpPath:  *flightDump,
		Interval:  *telemIval,
		Stderr:    os.Stderr,
	})
	if err != nil {
		fatal(err)
	}
	defer plane.stop()

	// The watchdog runs when asked for, and whenever the flight recorder
	// is armed — health events are what trigger its bursts.
	if trt != nil && (*watchdog || (plane != nil && plane.flight != nil)) {
		trt.StartWatchdog(taskrt.WatchdogConfig{
			StallThreshold: *stallThr,
			OnEvent: func(ev taskrt.HealthEvent) {
				fmt.Fprintf(os.Stderr, "inncabs: health: %s\n", ev)
				plane.trigger(ev.String())
			},
		})
	}

	// Fault injection: one extra task that sleeps past the stall
	// threshold, so smoke tests can assert the watchdog → flight-recorder
	// path end to end on a healthy benchmark.
	if *injStall > 0 && trt != nil {
		d := *injStall
		fmt.Fprintf(os.Stderr, "inncabs: fault injection: stalling one task for %v\n", d)
		stalled := taskrt.AsyncF(trt, func() int { time.Sleep(d); return 0 })
		defer stalled.Wait()
	}

	if *all {
		runSuite(rt, size, *samples)
		if session != nil {
			if err := session.Close(); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Printf("benchmark %s on %s, %s size, %d sample(s)\n", b.Name, rt.Name(), size, *samples)
	// The deadline clock starts here, bounding the measurement itself
	// rather than runtime setup.
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	var checksum int64
	var times []float64
	var runErr error
	for i := 0; i < *samples; i++ {
		start := time.Now()
		checksum, runErr = runBounded(ctx, b, rt, size)
		elapsed := time.Since(start)
		if runErr != nil {
			break
		}
		if session != nil {
			session.Sample() // the paper's evaluate-and-reset per sample
		}
		times = append(times, elapsed.Seconds())
	}
	if session != nil {
		if err := session.Close(); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "inncabs: run cancelled after %d complete sample(s): %v\n", len(times), runErr)
		if trt != nil {
			fmt.Fprintf(os.Stderr, "inncabs: tasks dropped at dispatch: %d, shed inline: %d\n",
				trt.Cancelled(), trt.Shed())
		}
		os.Exit(1)
	}
	status := "OK"
	// The sequential reference can cost as much as the run itself at the
	// big sizes, so it is computed only after the measurement finished.
	if want := b.RefChecksum(size); checksum != want {
		status = fmt.Sprintf("CHECKSUM MISMATCH (got %d want %d)", checksum, want)
		defer os.Exit(1)
	}
	fmt.Printf("verification: %s\n", status)
	fmt.Printf("execution time [s]: %s\n", stats.Summarize(times))
}

// runBounded runs one sample under ctx. Benchmarks with a cancellable
// kernel (RunCtx) observe the context cooperatively and drain quickly
// on cancellation; the rest are abandoned in a goroutine at the
// deadline — acceptable only because the process exits right after.
func runBounded(ctx context.Context, b *inncabs.Benchmark, rt inncabs.Runtime, size inncabs.Size) (int64, error) {
	if b.RunCtx != nil {
		return b.RunCtx(ctx, rt, size)
	}
	if ctx.Done() == nil { // unbounded: avoid the extra goroutine
		return b.Run(rt, size), nil
	}
	done := make(chan int64, 1)
	go func() { done <- b.Run(rt, size) }()
	select {
	case sum := <-done:
		return sum, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// runSuite executes every benchmark, verifying checksums, and prints a
// per-benchmark summary.
func runSuite(rt inncabs.Runtime, size inncabs.Size, samples int) {
	fmt.Printf("Inncabs suite on %s, %s size, %d sample(s) each\n\n", rt.Name(), size, samples)
	fmt.Printf("%-10s %-22s %-12s %-14s %s\n", "benchmark", "class", "verify", "median [s]", "spread [s]")
	failures := 0
	for _, b := range inncabs.All() {
		var checksum int64
		summary := stats.Repeat(samples, func() float64 {
			start := time.Now()
			checksum = b.Run(rt, size)
			return time.Since(start).Seconds()
		})
		verdict := "OK"
		if checksum != b.RefChecksum(size) {
			verdict = "MISMATCH"
			failures++
		}
		fmt.Printf("%-10s %-22s %-12s %-14.4f %.4f..%.4f\n",
			b.Name, b.Class, verdict, summary.Median, summary.Min, summary.Max)
	}
	if failures > 0 {
		fmt.Printf("\n%d benchmark(s) failed verification\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall benchmarks verified")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inncabs:", err)
	os.Exit(1)
}
