// Command inncabs runs one benchmark of the ported Inncabs suite for
// real — on the lightweight task runtime or the thread-per-task
// baseline — with the paper's performance-counter command line attached.
//
// Usage:
//
//	inncabs -bench sort -runtime hpx -threads 4 \
//	    -print-counter '/threads{locality#0/total}/count/cumulative' \
//	    -print-counter '/threads{locality#0/total}/time/average'
//	inncabs -bench fib -runtime std
//	inncabs -list-benchmarks
//	inncabs -bench sort -list-counters
//
// The run verifies the benchmark's checksum against the sequential
// reference and reports the execution-time summary over the configured
// number of samples (the paper takes 20 and reports medians).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/inncabs"
	"repro/internal/perfcli"
	"repro/internal/stats"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

func main() {
	var (
		benchName = flag.String("bench", "fib", "benchmark name")
		rtName    = flag.String("runtime", "hpx", "runtime: hpx or std")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads (hpx runtime)")
		sizeStr   = flag.String("size", "small", "workload size: test, small, medium, paper")
		samples   = flag.Int("samples", 3, "measurement samples (paper protocol: 20)")
		policyStr = flag.String("policy", "async", "launch policy: async, sync, fork, deferred, optional")
		listBench = flag.Bool("list-benchmarks", false, "list benchmarks and exit")
		all       = flag.Bool("all", false, "run and verify the whole suite, print a summary table")
		tracePath = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the task schedule to this file (hpx runtime)")
	)
	opts := perfcli.Bind(flag.CommandLine)
	flag.Parse()

	if *listBench {
		for _, b := range inncabs.All() {
			fmt.Printf("%-10s %-22s sync=%-18s grain=%s (%.2f µs)\n",
				b.Name, b.Class, b.Sync, b.Granularity, b.PaperTaskUs)
		}
		return
	}
	var b *inncabs.Benchmark
	var err error
	if !*all {
		if b, err = inncabs.ByName(*benchName); err != nil {
			fatal(err)
		}
	}
	size, err := inncabs.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	policy, err := taskrt.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}

	reg := core.NewRegistry()
	var rt inncabs.Runtime
	switch *rtName {
	case "hpx":
		trt := taskrt.New(taskrt.WithWorkers(*threads))
		defer trt.Shutdown()
		if err := trt.RegisterCounters(reg); err != nil {
			fatal(err)
		}
		if *tracePath != "" {
			trt.EnableTracing(0)
			defer func() {
				events, dropped := trt.TraceEvents()
				f, err := os.Create(*tracePath)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				if err := taskrt.WriteChromeTrace(f, events); err != nil {
					fatal(err)
				}
				fmt.Printf("trace: %d task events written to %s (%d dropped)\n",
					len(events), *tracePath, dropped)
			}()
		}
		hrt := inncabs.NewHPX(trt)
		hrt.Policy = policy
		rt = hrt
	case "std":
		srt := stdrt.New()
		if err := srt.RegisterCounters(reg); err != nil {
			fatal(err)
		}
		rt = inncabs.NewStd(srt)
	default:
		fatal(fmt.Errorf("unknown runtime %q (hpx or std)", *rtName))
	}

	session, err := opts.Start(reg)
	if err != nil {
		fatal(err)
	}
	if opts.ListCounters {
		return
	}

	if *all {
		runSuite(rt, size, *samples)
		if session != nil {
			if err := session.Close(); err != nil {
				fatal(err)
			}
		}
		return
	}

	fmt.Printf("benchmark %s on %s, %s size, %d sample(s)\n", b.Name, rt.Name(), size, *samples)
	want := b.RefChecksum(size)
	var checksum int64
	summary := stats.Repeat(*samples, func() float64 {
		start := time.Now()
		checksum = b.Run(rt, size)
		elapsed := time.Since(start)
		if session != nil {
			session.Sample() // the paper's evaluate-and-reset per sample
		}
		return elapsed.Seconds()
	})
	if session != nil {
		if err := session.Close(); err != nil {
			fatal(err)
		}
	}
	status := "OK"
	if checksum != want {
		status = fmt.Sprintf("CHECKSUM MISMATCH (got %d want %d)", checksum, want)
		defer os.Exit(1)
	}
	fmt.Printf("verification: %s\n", status)
	fmt.Printf("execution time [s]: %s\n", summary)
}

// runSuite executes every benchmark, verifying checksums, and prints a
// per-benchmark summary.
func runSuite(rt inncabs.Runtime, size inncabs.Size, samples int) {
	fmt.Printf("Inncabs suite on %s, %s size, %d sample(s) each\n\n", rt.Name(), size, samples)
	fmt.Printf("%-10s %-22s %-12s %-14s %s\n", "benchmark", "class", "verify", "median [s]", "spread [s]")
	failures := 0
	for _, b := range inncabs.All() {
		var checksum int64
		summary := stats.Repeat(samples, func() float64 {
			start := time.Now()
			checksum = b.Run(rt, size)
			return time.Since(start).Seconds()
		})
		verdict := "OK"
		if checksum != b.RefChecksum(size) {
			verdict = "MISMATCH"
			failures++
		}
		fmt.Printf("%-10s %-22s %-12s %-14.4f %.4f..%.4f\n",
			b.Name, b.Class, verdict, summary.Median, summary.Min, summary.Max)
	}
	if failures > 0 {
		fmt.Printf("\n%d benchmark(s) failed verification\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall benchmarks verified")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inncabs:", err)
	os.Exit(1)
}
