package main

// Live telemetry wiring for inncabs: -http serves /metrics, /series and
// (with -flight) /flight while the benchmark runs; -budget puts the
// sampling loop under a closed-loop overhead budget; -flight arms the
// anomaly-triggered flight recorder, fed by the runtime watchdog.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// telemetryOptions is the parsed -http/-budget/-flight flag set.
type telemetryOptions struct {
	HTTPAddr  string
	BudgetPct float64 // percent of one core; 0 disables the budget loop
	Flight    bool
	DumpPath  string // write the flight ring as JSON here at exit; "-" = stdout
	Interval  time.Duration
	Stderr    io.Writer
}

func (o telemetryOptions) enabled() bool {
	return o.HTTPAddr != "" || o.BudgetPct > 0 || o.Flight || o.DumpPath != ""
}

// telemetryPlane is the assembled live export: one sampler, a (possibly
// budgeted) collector feeding it, an optional flight recorder riding
// the collector, and an optional HTTP server over all of it.
type telemetryPlane struct {
	sampler  *telemetry.Sampler
	col      *telemetry.Collector
	budgeted *telemetry.BudgetedCollector
	flight   *telemetry.FlightRecorder
	srv      *http.Server
	dumpPath string
	stderr   io.Writer
}

// defaultActivePatterns seeds the active set when the user selected no
// counters: a core set across tiers, so a budget squeeze has debug
// counters to demote and critical ones to protect. Patterns that don't
// resolve on this runtime are skipped.
var defaultActivePatterns = []string{
	"/threads{locality#0/total}/count/cumulative",
	"/threads{locality#0/total}/time/average",
	"/threads{locality#0/total}/idle-rate",
	"/threads{locality#0/worker-thread#*}/count/cumulative",
	"/threads{locality#0/worker-thread#*}/time/average",
	"/runtime{locality#0/total}/health/events",
	"/runtime{locality#0/total}/health/callback-errors",
	"/runtime{locality#0/total}/count/cancelled",
	"/counters{locality#0/total}/cost/eval-ns",
	"/counters{locality#0/total}/cost/per-counter",
}

// newTelemetryPlane builds and starts the plane, or returns (nil, nil)
// when no telemetry flag is set.
func newTelemetryPlane(reg *core.Registry, o telemetryOptions) (*telemetryPlane, error) {
	if !o.enabled() {
		return nil, nil
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	if len(reg.Active()) == 0 {
		for _, p := range defaultActivePatterns {
			_, _ = reg.AddActive(p)
		}
	}
	p := &telemetryPlane{
		sampler:  telemetry.NewSampler(0),
		dumpPath: o.DumpPath,
		stderr:   o.Stderr,
	}
	if o.BudgetPct > 0 {
		p.budgeted = telemetry.NewBudgetedCollector(p.sampler, reg, o.Interval,
			telemetry.Budget{Fraction: o.BudgetPct / 100}, false)
		p.budgeted.Controller.RegisterCounters(reg)
		p.col = p.budgeted.Collector
	} else {
		p.col = telemetry.NewCollector(p.sampler, telemetry.RegistrySource(reg, false), o.Interval)
	}
	if o.Flight || o.DumpPath != "" {
		p.flight = telemetry.NewFlightRecorder(telemetry.FlightConfig{})
		p.flight.RegisterCounters(reg)
		p.col.EnableFlight(p.flight)
	}
	if o.HTTPAddr != "" {
		ln, err := net.Listen("tcp", o.HTTPAddr)
		if err != nil {
			return nil, err
		}
		var opts []telemetry.HandlerOption
		endpoints := "/metrics, /series"
		if p.flight != nil {
			opts = append(opts, telemetry.WithFlight(p.flight))
			endpoints += ", /flight"
		}
		p.srv = &http.Server{Handler: telemetry.Handler(p.sampler, opts...)}
		go func() { _ = p.srv.Serve(ln) }()
		fmt.Fprintf(o.Stderr, "inncabs: serving telemetry on http://%s (%s)\n",
			ln.Addr(), endpoints)
	}
	if p.budgeted != nil {
		p.budgeted.Start()
	} else {
		p.col.Start()
	}
	return p, nil
}

// trigger arms a flight burst (no-op without a recorder).
func (p *telemetryPlane) trigger(reason string) {
	if p == nil || p.flight == nil {
		return
	}
	p.col.TriggerFlight(reason)
}

// stop halts sampling, closes the HTTP server, and writes the flight
// dump if one was requested.
func (p *telemetryPlane) stop() {
	if p == nil {
		return
	}
	if p.budgeted != nil {
		p.budgeted.Stop()
	} else {
		p.col.Stop()
	}
	if p.srv != nil {
		_ = p.srv.Close()
	}
	if p.dumpPath != "" && p.flight != nil {
		out := os.Stdout
		if p.dumpPath != "-" {
			f, err := os.Create(p.dumpPath)
			if err != nil {
				fmt.Fprintf(p.stderr, "inncabs: flight dump: %v\n", err)
				return
			}
			defer f.Close()
			out = f
		}
		if err := p.flight.WriteJSON(out); err != nil {
			fmt.Fprintf(p.stderr, "inncabs: flight dump: %v\n", err)
			return
		}
		d := p.flight.Snapshot()
		fmt.Fprintf(p.stderr, "inncabs: flight dump: %d frames (%d burst) to %s\n",
			d.Frames, d.Burst, p.dumpPath)
	}
}
