package main

// -tree: watch a fleet through the hierarchical aggregation overlay
// instead of polling localities one by one. perfmon builds a simulated
// fleet (-fleet localities of simulator-derived counters, -tree-wire of
// the deepest leaves attached through real loopback parcel servers),
// ticks the overlay at -interval, and reads ONLY the root — whose cost
// is bounded by its fanout, not the fleet size. The folded view is
// served through the same exports as remote sampling: /metrics and
// /series carry the @sum/@avg/@min/@max/@count digests and per-subtree
// freshness series, and /tree dumps the overlay topology as JSON.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/agas/tree"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// treeOptions carries the -tree flag group.
type treeOptions struct {
	fleet    int
	fanout   int
	wire     int
	interval time.Duration
	n        int
	httpAddr string
	deadline time.Duration
}

// runTree is the -tree entry point: build the fleet, tick it, publish
// the root's fold.
func runTree(opts treeOptions, stdout, stderr io.Writer) int {
	f, err := tree.NewFleet(tree.FleetConfig{
		N:          opts.fleet,
		Fanout:     opts.fanout,
		WireLeaves: opts.wire,
		Interval:   opts.interval,
	})
	if err != nil {
		fmt.Fprintln(stderr, "perfmon:", err)
		return 1
	}
	defer f.Close()

	sampler := telemetry.NewSampler(0)
	if opts.httpAddr != "" {
		ln, err := net.Listen("tcp", opts.httpAddr)
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		srv := &http.Server{Handler: telemetry.Handler(sampler,
			telemetry.WithJSON("/tree", func() (any, error) {
				// The top three levels are what an operator can read; the
				// full 10k-rank dump belongs in counterls -tree.
				return f.Topology(time.Now(), 3), nil
			}))}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(stderr, "perfmon: serving folded telemetry on http://%s (/metrics, /series, /tree)\n",
			ln.Addr())
	}

	ctx := context.Background()
	if opts.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.deadline)
		defer cancel()
	}

	var vals []core.Value
	for i := 0; i < opts.n; i++ {
		if i > 0 {
			select {
			case <-time.After(opts.interval):
			case <-ctx.Done():
			}
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "perfmon: run deadline reached after %d/%d ticks: %v\n", i, opts.n, err)
			return 1
		}
		begin := time.Now()
		snap, err := f.Tick(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "perfmon: tick:", err)
			return 1
		}
		rootNs := time.Since(begin)
		vals = f.Root().ExportValues(vals[:0])
		for _, v := range vals {
			sampler.ObserveValue(v)
		}
		fmt.Fprintf(stdout, "%s  fold gen %d: %d localities (%d stale), depth %d, partial=%v, reparents %d, root tick %v\n",
			snap.Time.Format(time.RFC3339), snap.Gen, snap.Localities, snap.StaleLocalities,
			snap.Depth, snap.Partial, snap.Reparents, rootNs.Round(time.Microsecond))
	}

	// Final fold, in full: one line per digest entry so a bare
	// `perfmon -tree` answers "how is the fleet doing" without curl.
	snap, err := f.Root().TreeSnapshot()
	if err != nil {
		fmt.Fprintln(stderr, "perfmon:", err)
		return 1
	}
	for _, e := range snap.Entries {
		line := fmt.Sprintf("%-55s sum=%g avg=%g min=%g max=%g count=%d",
			e.Key, e.Sum, e.Sum/float64(e.Count), e.Min, e.Max, e.Count)
		if e.Stale > 0 {
			line += fmt.Sprintf(" stale=%d", e.Stale)
		}
		fmt.Fprintln(stdout, line)
	}
	return 0
}
