package main

// Live export of the sampling loop: -http serves the sampled series
// over HTTP (Prometheus text at /metrics, JSON at /series) while the
// loop runs, and -csv appends one CSV row per successful sample in the
// same format perfcli writes locally, so local and remote captures are
// interchangeable downstream.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// exporter fans successful samples out to the optional live exports.
type exporter struct {
	sampler *telemetry.Sampler
	srv     *http.Server
	csv     *os.File
}

func newExporter(httpAddr, csvPath string, fr *telemetry.FlightRecorder, stderr io.Writer) (*exporter, error) {
	e := &exporter{}
	if httpAddr != "" {
		e.sampler = telemetry.NewSampler(0)
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return nil, err
		}
		var opts []telemetry.HandlerOption
		endpoints := "/metrics, /series"
		if fr != nil {
			opts = append(opts, telemetry.WithFlight(fr))
			endpoints += ", /flight"
		}
		e.srv = &http.Server{Handler: telemetry.Handler(e.sampler, opts...)}
		go func() { _ = e.srv.Serve(ln) }()
		fmt.Fprintf(stderr, "perfmon: serving telemetry on http://%s (%s)\n",
			ln.Addr(), endpoints)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			e.close()
			return nil, err
		}
		e.csv = f
		fmt.Fprintln(f, "counter,timestamp,value,count,status")
	}
	return e, nil
}

// observe records one successful sample in every active export.
func (e *exporter) observe(v core.Value) {
	if e.sampler != nil {
		e.sampler.ObserveValue(v)
	}
	if e.csv != nil {
		fmt.Fprintf(e.csv, "%s,%s,%g,%d,%s\n",
			v.Name, v.Time.Format(time.RFC3339Nano), v.Float64(), v.Count, v.Status)
	}
}

func (e *exporter) close() {
	if e.srv != nil {
		_ = e.srv.Close()
	}
	if e.csv != nil {
		_ = e.csv.Close()
	}
}
