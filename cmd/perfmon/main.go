// Command perfmon attaches to a running application's parcel port and
// monitors its performance counters remotely — the paper's "any counter
// can be accessed remotely" demonstrated across processes.
//
// Usage:
//
//	perfmon -addr 127.0.0.1:7110 -types
//	perfmon -addr 127.0.0.1:7110 -discover '/threads{locality#0/worker-thread#*}/time/average'
//	perfmon -addr 127.0.0.1:7110 -counter '/threads{locality#0/total}/idle-rate' -interval 1s -n 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/parcel"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7110", "parcel address of the target application")
		types    = flag.Bool("types", false, "list the remote counter types")
		discover = flag.String("discover", "", "expand a remote counter pattern")
		counter  = flag.String("counter", "", "remote counter to read")
		interval = flag.Duration("interval", time.Second, "sampling interval with -n > 1")
		n        = flag.Int("n", 1, "number of samples")
		reset    = flag.Bool("reset", false, "evaluate-and-reset on each sample")
	)
	flag.Parse()

	cli, err := parcel.Dial(*addr, nil, 0)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	switch {
	case *types:
		infos, err := cli.Types()
		if err != nil {
			fatal(err)
		}
		for _, info := range infos {
			fmt.Printf("%-55s %s\n", info.TypeName, info.HelpText)
		}
	case *discover != "":
		names, err := cli.Discover(*discover)
		if err != nil {
			fatal(err)
		}
		for _, name := range names {
			fmt.Println(name)
		}
	case *counter != "":
		for i := 0; i < *n; i++ {
			if i > 0 {
				time.Sleep(*interval)
			}
			v, err := cli.Evaluate(*counter, *reset)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s  %s = %g (count %d, %s)\n",
				v.Time.Format(time.RFC3339), v.Name, v.Float64(), v.Count, v.Status)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfmon:", err)
	os.Exit(1)
}
