// Command perfmon attaches to a running application's parcel port and
// monitors its performance counters remotely — the paper's "any counter
// can be accessed remotely" demonstrated across processes.
//
// The monitor is built to outlive the thing it monitors misbehaving:
// every request carries a deadline (-timeout), idempotent requests are
// retried (-retries), and a sampling loop marks a failed sample as
// missed and keeps going — it exits non-zero only if every sample
// failed. With -stale (default on), samples taken while the target is
// unreachable report the last-known value tagged "stale".
//
// -counter is repeatable: K counters are bound once into a remote bulk
// set and every sample is then a single wire exchange (evaluate_bulk),
// not K round trips. Against servers predating the bulk op the client
// silently degrades to per-counter requests.
//
// Usage:
//
//	perfmon -addr 127.0.0.1:7110 -types
//	perfmon -addr 127.0.0.1:7110 -discover '/threads{locality#0/worker-thread#*}/time/average'
//	perfmon -addr 127.0.0.1:7110 -counter '/threads{locality#0/total}/idle-rate' -interval 1s -n 10
//	perfmon -addr 127.0.0.1:7110 -counter <a> -counter <b> -counter <c> -interval 1s -n 60
//	perfmon -addr 127.0.0.1:7110 -spawn compute -arg '{"n":32}' -deadline 5s
//	perfmon -tree -fleet 10000 -fanout 8 -n 5 -interval 1s -http 127.0.0.1:9090
//
// -tree switches from polling one target to watching a whole simulated
// fleet through the hierarchical aggregation overlay: only the root is
// read, so the per-tick monitoring cost is bounded by the fanout, not
// the fleet size. See docs/COUNTERS.md, "Aggregation trees".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
	"repro/internal/telemetry"
)

// writeFlightDump writes the captured ring as JSON to path ("-" =
// stdout).
func writeFlightDump(fr *telemetry.FlightRecorder, path string, stdout io.Writer) error {
	if path == "-" {
		return fr.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fr.WriteJSON(f)
}

// counterList is a repeatable -counter flag.
type counterList []string

func (c *counterList) String() string { return strings.Join(*c, ",") }

func (c *counterList) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7110", "parcel address of the target application")
		types    = fs.Bool("types", false, "list the remote counter types")
		discover = fs.String("discover", "", "expand a remote counter pattern")
		counters counterList
		interval = fs.Duration("interval", time.Second, "sampling interval with -n > 1")
		n        = fs.Int("n", 1, "number of samples")
		reset    = fs.Bool("reset", false, "evaluate-and-reset on each sample")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request deadline")
		retries  = fs.Int("retries", 2, "retries per failed idempotent request")
		stale    = fs.Bool("stale", true, "serve last-known values while the target is unreachable")
		deadline = fs.Duration("deadline", 0, "total run deadline for the sampling loop (0 = unbounded)")
		watchdog = fs.Duration("watchdog", 0, "warn when no sample has succeeded for this long (0 = off)")
		httpAddr = fs.String("http", "", "serve the sampled series over HTTP at this address (/metrics Prometheus text, /series JSON)")
		csvPath  = fs.String("csv", "", "append samples as CSV to this file (header row + one line per sample)")
		spawn    = fs.String("spawn", "", "run this remote action through the fault-tolerant spawn plane and print its JSON result")
		arg      = fs.String("arg", "", "JSON argument for -spawn")

		treeMode = fs.Bool("tree", false, "watch a simulated fleet through the hierarchical aggregation overlay (reads only the root; no -addr target needed)")
		fleetN   = fs.Int("fleet", 10000, "with -tree: number of simulated localities")
		fanout   = fs.Int("fanout", 8, "with -tree: overlay arity k")
		treeWire = fs.Int("tree-wire", 4, "with -tree: deepest leaves attached through real loopback parcel servers")

		budgetPct  = fs.Float64("budget", 0, "sampling overhead budget, percent of one core spent evaluating remote counters; the loop auto-stretches its interval to stay inside it (0 = off)")
		flightOn   = fs.Bool("flight", false, "arm the flight recorder: a watchdog stall episode flips the loop to high-rate capture over a pre-allocated ring (served at /flight with -http)")
		flightDump = fs.String("flight-dump", "", "write the flight-recorder ring as JSON to this file when the loop ends (implies -flight; \"-\" = stdout)")
	)
	fs.Var(&counters, "counter", "remote counter to read (repeatable; all sampled in one exchange)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *treeMode {
		// The overlay is its own target: no parcel dial, the root is in
		// this process (with -tree-wire leaves behind real loopback
		// servers underneath).
		return runTree(treeOptions{
			fleet: *fleetN, fanout: *fanout, wire: *treeWire,
			interval: *interval, n: *n, httpAddr: *httpAddr, deadline: *deadline,
		}, stdout, stderr)
	}

	opts := parcel.ClientOptions{
		Timeout:    *timeout,
		Retries:    *retries,
		ServeStale: *stale,
	}
	if len(counters) > 0 && *n > 1 {
		// A sampling monitor should re-probe a dead target at its own
		// cadence, not the breaker's generic cooldown — otherwise a
		// fast loop can run out before the breaker half-opens again.
		opts.BreakerCooldown = *interval
	}
	dialCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cli, err := parcel.DialContext(dialCtx, *addr, nil, 0, opts)
	if err != nil {
		fmt.Fprintln(stderr, "perfmon:", err)
		return 1
	}
	defer cli.Close()

	switch {
	case *types:
		infos, err := cli.Types()
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		for _, info := range infos {
			fmt.Fprintf(stdout, "%-55s %s\n", info.TypeName, info.HelpText)
		}
	case *discover != "":
		names, err := cli.Discover(*discover)
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		for _, name := range names {
			fmt.Fprintln(stdout, name)
		}
	case len(counters) > 0:
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		var fr *telemetry.FlightRecorder
		if *flightOn || *flightDump != "" {
			fr = telemetry.NewFlightRecorder(telemetry.FlightConfig{})
		}
		var exp *exporter
		if *httpAddr != "" || *csvPath != "" {
			var err error
			exp, err = newExporter(*httpAddr, *csvPath, fr, stderr)
			if err != nil {
				fmt.Fprintln(stderr, "perfmon:", err)
				return 1
			}
			defer exp.close()
		}
		rc := sampleLoop(ctx, cli, stdout, stderr, exp, counters, *reset, *n, *interval, *watchdog,
			*budgetPct, fr)
		if *flightDump != "" && fr != nil {
			if err := writeFlightDump(fr, *flightDump, stdout); err != nil {
				fmt.Fprintln(stderr, "perfmon: flight dump:", err)
				if rc == 0 {
					rc = 1
				}
			}
		}
		return rc
	case *spawn != "":
		// The spawn plane, not bare invoke: the key-deduped retry path
		// means a dropped response cannot double-run the action, -deadline
		// ships as the remote execution budget, and Ctrl-C style context
		// ends cancel the remote task best-effort.
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		var raw json.RawMessage
		if *arg != "" {
			if !json.Valid([]byte(*arg)) {
				fmt.Fprintf(stderr, "perfmon: -arg is not valid JSON: %s\n", *arg)
				return 2
			}
			raw = json.RawMessage(*arg)
		}
		res, err := cli.SpawnJSON(ctx, *spawn, raw)
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		if len(res) == 0 {
			res = json.RawMessage("null")
		}
		fmt.Fprintf(stdout, "%s\n", res)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// sampleLoop reads the counters n times, interval apart. The counters
// are bound once into a remote bulk set, so each sample is one wire
// exchange regardless of how many counters are monitored (with
// transparent per-counter fallback against pre-bulk servers). One
// failed sample is not fatal to the run — the monitor must never die
// with the application it observes — so errors are reported, the sample
// marked missed, and the loop continues; a sample counts as good when
// at least one counter answered (fresh or stale), and only a run where
// every sample failed exits non-zero. ctx bounds the whole loop
// (requests and the sleeps between them); a lapsed deadline stops the
// run with exit code 1. With watchdog > 0, one warning is printed per
// stall episode: when no sample has succeeded for that long, and again
// only after a recovery.
//
// With budgetPct > 0 the loop self-regulates: the wall time it spends
// evaluating remote counters is metered, and a BudgetController
// stretches the interval whenever that cost exceeds the budget (a
// remote monitor has no tiers to demote, so rate is its only actuator).
// With a flight recorder, every sample lands in the ring, a watchdog
// stall episode triggers a high-rate burst, and burst rate overrides
// both the configured and the budget-stretched interval for the
// bounded burst window.
func sampleLoop(ctx context.Context, cli *parcel.Client, stdout, stderr io.Writer,
	exp *exporter, counters []string, reset bool, n int, interval, watchdog time.Duration,
	budgetPct float64, fr *telemetry.FlightRecorder) int {
	set := cli.NewBulkSet(counters)
	cur := interval
	var costNs int64
	var bc *telemetry.BudgetController
	if budgetPct > 0 {
		bc = telemetry.NewBudgetController(telemetry.BudgetControllerConfig{
			Budget:       telemetry.Budget{Fraction: budgetPct / 100},
			BaseInterval: interval,
			Cost:         func() int64 { return costNs },
			SetInterval: func(d time.Duration) {
				cur = d
				fmt.Fprintf(stderr, "perfmon: budget: sampling interval -> %v\n", d)
			},
		})
	}
	good := 0
	lastGood := time.Now()
	stallWarned := false
	miss := func(i int, why string) {
		fmt.Fprintf(stderr, "perfmon: sample %d/%d missed: %s\n", i+1, n, why)
		if watchdog > 0 && !stallWarned && time.Since(lastGood) >= watchdog {
			fmt.Fprintf(stderr, "perfmon: watchdog: no successful sample for %v\n",
				time.Since(lastGood).Round(time.Millisecond))
			stallWarned = true
			if fr != nil && fr.Trigger("watchdog: sample stall") {
				fmt.Fprintln(stderr, "perfmon: flight recorder bursting")
			}
		}
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			d := cur
			if fr != nil && fr.Bursting() {
				d = fr.BurstInterval(cur)
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "perfmon: run deadline reached after %d/%d samples: %v\n", i, n, err)
			return 1
		}
		evalStart := time.Now()
		vals, err := set.EvaluateContext(ctx, reset)
		costNs += time.Since(evalStart).Nanoseconds()
		if fr != nil {
			fr.Record(time.Now(), vals)
		}
		if bc != nil {
			bc.Tick(time.Now())
		}
		if err != nil {
			miss(i, err.Error())
			continue
		}
		ok := 0
		for _, v := range vals {
			if !v.Valid() && v.Status != core.StatusStale {
				fmt.Fprintf(stderr, "perfmon: sample %d/%d: %s unavailable (%s)\n",
					i+1, n, v.Name, v.Status)
				continue
			}
			ok++
			fmt.Fprintf(stdout, "%s  %s = %g (count %d, %s)\n",
				v.Time.Format(time.RFC3339), v.Name, v.Float64(), v.Count, v.Status)
			if exp != nil {
				exp.observe(v)
			}
		}
		if ok == 0 {
			miss(i, "no counter answered")
			continue
		}
		good++
		lastGood = time.Now()
		stallWarned = false
	}
	if good == 0 {
		fmt.Fprintf(stderr, "perfmon: all %d samples failed\n", n)
		return 1
	}
	if missed := n - good; missed > 0 {
		fmt.Fprintf(stderr, "perfmon: %d/%d samples missed\n", missed, n)
	}
	return 0
}
