// Command perfmon attaches to a running application's parcel port and
// monitors its performance counters remotely — the paper's "any counter
// can be accessed remotely" demonstrated across processes.
//
// The monitor is built to outlive the thing it monitors misbehaving:
// every request carries a deadline (-timeout), idempotent requests are
// retried (-retries), and a sampling loop marks a failed sample as
// missed and keeps going — it exits non-zero only if every sample
// failed. With -stale (default on), samples taken while the target is
// unreachable report the last-known value tagged "stale".
//
// Usage:
//
//	perfmon -addr 127.0.0.1:7110 -types
//	perfmon -addr 127.0.0.1:7110 -discover '/threads{locality#0/worker-thread#*}/time/average'
//	perfmon -addr 127.0.0.1:7110 -counter '/threads{locality#0/total}/idle-rate' -interval 1s -n 10
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/parcel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:7110", "parcel address of the target application")
		types    = fs.Bool("types", false, "list the remote counter types")
		discover = fs.String("discover", "", "expand a remote counter pattern")
		counter  = fs.String("counter", "", "remote counter to read")
		interval = fs.Duration("interval", time.Second, "sampling interval with -n > 1")
		n        = fs.Int("n", 1, "number of samples")
		reset    = fs.Bool("reset", false, "evaluate-and-reset on each sample")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request deadline")
		retries  = fs.Int("retries", 2, "retries per failed idempotent request")
		stale    = fs.Bool("stale", true, "serve last-known values while the target is unreachable")
		deadline = fs.Duration("deadline", 0, "total run deadline for the sampling loop (0 = unbounded)")
		watchdog = fs.Duration("watchdog", 0, "warn when no sample has succeeded for this long (0 = off)")
		httpAddr = fs.String("http", "", "serve the sampled series over HTTP at this address (/metrics Prometheus text, /series JSON)")
		csvPath  = fs.String("csv", "", "append samples as CSV to this file (header row + one line per sample)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	opts := parcel.ClientOptions{
		Timeout:    *timeout,
		Retries:    *retries,
		ServeStale: *stale,
	}
	if *counter != "" && *n > 1 {
		// A sampling monitor should re-probe a dead target at its own
		// cadence, not the breaker's generic cooldown — otherwise a
		// fast loop can run out before the breaker half-opens again.
		opts.BreakerCooldown = *interval
	}
	dialCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cli, err := parcel.DialContext(dialCtx, *addr, nil, 0, opts)
	if err != nil {
		fmt.Fprintln(stderr, "perfmon:", err)
		return 1
	}
	defer cli.Close()

	switch {
	case *types:
		infos, err := cli.Types()
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		for _, info := range infos {
			fmt.Fprintf(stdout, "%-55s %s\n", info.TypeName, info.HelpText)
		}
	case *discover != "":
		names, err := cli.Discover(*discover)
		if err != nil {
			fmt.Fprintln(stderr, "perfmon:", err)
			return 1
		}
		for _, name := range names {
			fmt.Fprintln(stdout, name)
		}
	case *counter != "":
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		var exp *exporter
		if *httpAddr != "" || *csvPath != "" {
			var err error
			exp, err = newExporter(*httpAddr, *csvPath, stderr)
			if err != nil {
				fmt.Fprintln(stderr, "perfmon:", err)
				return 1
			}
			defer exp.close()
		}
		return sampleLoop(ctx, cli, stdout, stderr, exp, *counter, *reset, *n, *interval, *watchdog)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// sampleLoop reads the counter n times, interval apart. One failed
// sample is not fatal to the run — the monitor must never die with the
// application it observes — so errors are reported, the sample marked
// missed, and the loop continues; only a run where every sample failed
// exits non-zero. ctx bounds the whole loop (requests and the sleeps
// between them); a lapsed deadline stops the run with exit code 1.
// With watchdog > 0, one warning is printed per stall episode: when no
// sample has succeeded for that long, and again only after a recovery.
func sampleLoop(ctx context.Context, cli *parcel.Client, stdout, stderr io.Writer,
	exp *exporter, counter string, reset bool, n int, interval, watchdog time.Duration) int {
	good := 0
	lastGood := time.Now()
	stallWarned := false
	for i := 0; i < n; i++ {
		if i > 0 {
			select {
			case <-time.After(interval):
			case <-ctx.Done():
			}
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(stderr, "perfmon: run deadline reached after %d/%d samples: %v\n", i, n, err)
			return 1
		}
		v, err := cli.EvaluateContext(ctx, counter, reset)
		if err != nil {
			fmt.Fprintf(stderr, "perfmon: sample %d/%d missed: %v\n", i+1, n, err)
			if watchdog > 0 && !stallWarned && time.Since(lastGood) >= watchdog {
				fmt.Fprintf(stderr, "perfmon: watchdog: no successful sample for %v\n",
					time.Since(lastGood).Round(time.Millisecond))
				stallWarned = true
			}
			continue
		}
		good++
		lastGood = time.Now()
		stallWarned = false
		fmt.Fprintf(stdout, "%s  %s = %g (count %d, %s)\n",
			v.Time.Format(time.RFC3339), v.Name, v.Float64(), v.Count, v.Status)
		if exp != nil {
			exp.observe(v)
		}
	}
	if good == 0 {
		fmt.Fprintf(stderr, "perfmon: all %d samples failed\n", n)
		return 1
	}
	if missed := n - good; missed > 0 {
		fmt.Fprintf(stderr, "perfmon: %d/%d samples missed\n", missed, n)
	}
	return 0
}
