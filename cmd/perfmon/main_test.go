package main

// The monitor must not die with the thing it monitors: the sampling
// loop tolerates a server that is killed and restarted mid-run, marks
// missed samples, and exits non-zero only when every sample failed.

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

const testCounter = "/threads{locality#0/total}/count/cumulative"

func startServer(t *testing.T, addr string, value int64) *parcel.Server {
	t.Helper()
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "tasks"})
	reg.MustRegister(c)
	c.Add(value)
	var srv *parcel.Server
	var err error
	// The restart path rebinds a just-released port; give the OS a few
	// tries before declaring failure.
	for attempt := 0; attempt < 50; attempt++ {
		srv, err = parcel.Serve(addr, reg, 0)
		if err == nil {
			return srv
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("Serve(%s): %v", addr, err)
	return nil
}

func TestSampleLoopSurvivesServerRestart(t *testing.T) {
	srv := startServer(t, "127.0.0.1:0", 5)
	addr := srv.Addr()

	var stdout, stderr bytes.Buffer
	rc := make(chan int, 1)
	go func() {
		rc <- run([]string{
			"-addr", addr,
			"-counter", testCounter,
			"-n", "40", "-interval", "50ms",
			"-timeout", "300ms", "-retries", "1",
		}, &stdout, &stderr)
	}()

	// Kill the server mid-loop, leave it dead for a while, resurrect it
	// on the same address with a different counter value.
	time.Sleep(500 * time.Millisecond)
	srv.Close()
	time.Sleep(500 * time.Millisecond)
	srv2 := startServer(t, addr, 9)
	defer srv2.Close()

	var code int
	select {
	case code = <-rc:
	case <-time.After(30 * time.Second):
		t.Fatal("sampling loop did not finish")
	}
	out, errs := stdout.String(), stderr.String()
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (loop must survive the restart)\nstdout:\n%s\nstderr:\n%s", code, out, errs)
	}
	if !strings.Contains(out, "= 5") {
		t.Fatalf("no pre-restart samples:\n%s", out)
	}
	if !strings.Contains(out, "= 9") {
		t.Fatalf("no post-restart samples — loop never recovered:\n%s\nstderr:\n%s", out, errs)
	}
	// During the outage the last-known value is served as stale.
	if !strings.Contains(out, "stale") {
		t.Fatalf("no stale samples during the outage:\n%s\nstderr:\n%s", out, errs)
	}
}

func TestCSVExport(t *testing.T) {
	srv := startServer(t, "127.0.0.1:0", 7)
	defer srv.Close()
	csv := filepath.Join(t.TempDir(), "samples.csv")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr(),
		"-counter", testCounter,
		"-n", "3", "-interval", "10ms", "-timeout", "500ms",
		"-csv", csv,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want header + 3 samples:\n%s", len(lines), data)
	}
	if lines[0] != "counter,timestamp,value,count,status" {
		t.Fatalf("csv header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 5 || fields[0] != testCounter || fields[2] != "7" {
			t.Fatalf("bad csv row %q", line)
		}
		if _, err := time.Parse(time.RFC3339Nano, fields[1]); err != nil {
			t.Fatalf("bad csv timestamp in %q: %v", line, err)
		}
	}
}

// syncBuffer lets the test read the stream while the loop writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHTTPExport(t *testing.T) {
	srv := startServer(t, "127.0.0.1:0", 11)
	defer srv.Close()

	var stdout, stderr syncBuffer
	rc := make(chan int, 1)
	go func() {
		rc <- run([]string{
			"-addr", srv.Addr(),
			"-counter", testCounter,
			"-n", "40", "-interval", "50ms", "-timeout", "500ms",
			"-http", "127.0.0.1:0",
		}, &stdout, &stderr)
	}()

	// The exporter prints its bound address on stderr.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no telemetry address announced:\n%s", stderr.String())
		}
		for _, line := range strings.Split(stderr.String(), "\n") {
			if i := strings.Index(line, "http://"); i >= 0 {
				base = strings.Fields(line[i:])[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Wait until at least one sample landed, then check both endpoints.
	var body string
	for time.Now().Before(deadline) {
		res, err := http.Get(base + "/metrics")
		if err == nil {
			var sb strings.Builder
			buf := make([]byte, 32<<10)
			for {
				n, err := res.Body.Read(buf)
				sb.Write(buf[:n])
				if err != nil {
					break
				}
			}
			res.Body.Close()
			body = sb.String()
			if strings.Contains(body, "taskrt_threads_count_cumulative") {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(body, "# TYPE taskrt_threads_count_cumulative gauge") ||
		!strings.Contains(body, `taskrt_threads_count_cumulative{locality="0",instance="total"} 11`) {
		t.Fatalf("prometheus exposition malformed:\n%s", body)
	}

	res, err := http.Get(base + "/series")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got struct {
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Name != testCounter ||
		len(got.Series[0].Points) == 0 || got.Series[0].Points[0].V != 11 {
		t.Fatalf("series = %+v", got)
	}

	select {
	case code := <-rc:
		if code != 0 {
			t.Fatalf("exit code = %d\nstderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sampling loop did not finish")
	}
}

func TestRepeatableCounterFlag(t *testing.T) {
	// Two -counter flags: both sampled every tick, one of them bound to
	// nothing degrades that slot without sinking the sample.
	reg := core.NewRegistry()
	for i, val := range []int64{5, 8} {
		c := core.NewRawCounter(
			core.Name{Object: "threads", Counter: "count/cumulative"}.
				WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...),
			core.Info{TypeName: "/threads/count/cumulative"})
		reg.MustRegister(c)
		c.Add(val)
	}
	srv, err := parcel.Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr(),
		"-counter", "/threads{locality#0/worker-thread#0}/count/cumulative",
		"-counter", "/threads{locality#0/worker-thread#1}/count/cumulative",
		"-counter", "/nosuch{locality#0/total}/counter",
		"-n", "3", "-interval", "5ms", "-timeout", "500ms",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if strings.Count(out, "= 5") != 3 || strings.Count(out, "= 8") != 3 {
		t.Fatalf("expected 3 samples of both counters:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "/nosuch{locality#0/total}/counter unavailable") {
		t.Fatalf("dead slot not reported:\n%s", stderr.String())
	}
}

func TestSampleLoopAllFailedExitsNonZero(t *testing.T) {
	// A server that accepts but never answers: with -stale=false every
	// sample times out, and only then is the run itself a failure.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ln.Addr().String(),
		"-counter", testCounter,
		"-n", "3", "-interval", "10ms",
		"-timeout", "200ms", "-retries", "0", "-stale=false",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit code 0 with an unresponsive target\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "all 3 samples failed") {
		t.Fatalf("missing all-failed diagnostic:\n%s", stderr.String())
	}
}

func TestSingleMissedSampleStillSucceeds(t *testing.T) {
	srv := startServer(t, "127.0.0.1:0", 5)
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr(),
		"-counter", "/nosuch{locality#0/total}/counter",
		"-n", "1", "-timeout", "300ms",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("all samples failed but exit code is 0")
	}
	// Mixed run: first the bad counter fails, then plenty of good ones.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{
		"-addr", srv.Addr(),
		"-counter", testCounter,
		"-n", "2", "-interval", "1ms", "-timeout", "300ms",
	}, &stdout, &stderr)
	if code != 0 || strings.Count(stdout.String(), "= 5") != 2 {
		t.Fatalf("clean run: code %d\n%s\n%s", code, stdout.String(), stderr.String())
	}
}

func TestSpawnMode(t *testing.T) {
	srv := startServer(t, "127.0.0.1:0", 0)
	defer srv.Close()
	actions := parcel.NewActionMap()
	if err := parcel.RegisterAction(actions, "double", func(n int) (int, error) {
		return 2 * n, nil
	}); err != nil {
		t.Fatal(err)
	}
	srv.WithActions(actions)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", srv.Addr(),
		"-spawn", "double", "-arg", "21",
		"-deadline", "5s", "-timeout", "1s",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr:\n%s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "42" {
		t.Fatalf("spawn result = %q, want 42", got)
	}

	// Failures are diagnosed, not swallowed: unknown action and
	// malformed -arg both exit non-zero with a reason.
	stderr.Reset()
	if code := run([]string{"-addr", srv.Addr(), "-spawn", "nope"},
		&stdout, &stderr); code == 0 {
		t.Fatal("unknown action exited 0")
	} else if !strings.Contains(stderr.String(), "unknown action") {
		t.Fatalf("unknown-action diagnostic missing:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-addr", srv.Addr(), "-spawn", "double", "-arg", "{not json"},
		&stdout, &stderr); code != 2 {
		t.Fatalf("malformed -arg exit code = %d, want 2", code)
	}
}
