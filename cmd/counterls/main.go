// Command counterls lists the performance-counter types a fully
// provisioned locality exposes: the task runtime's thread-manager
// counters, the runtime memory/uptime counters, the baseline's
// stdthreads counters, the modelled PAPI hardware counters, the AGAS and
// parcel counters, and the statistics/arithmetics meta counter families.
//
// With -discover PATTERN it expands a (wildcarded) counter name into the
// matching concrete instances instead.
//
// With -tree it builds a small simulated aggregation overlay (-tree-n
// localities, arity -tree-fanout), runs one fold round and prints the
// resulting topology: every rank's depth, parent and attached children
// with per-subtree freshness — the operator's view of the structure
// behind /agas{...}/tree/* counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/agas"
	"repro/internal/agas/tree"
	"repro/internal/hwsim"
	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/perfcli"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

func main() {
	var (
		threads    = flag.Int("threads", 2, "worker threads of the sample runtime")
		discover   = flag.String("discover", "", "expand a counter pattern into matching instances")
		treeMode   = flag.Bool("tree", false, "print the topology of a simulated aggregation overlay")
		treeN      = flag.Int("tree-n", 21, "with -tree: number of simulated localities")
		treeFanout = flag.Int("tree-fanout", 4, "with -tree: overlay arity k")
	)
	flag.Parse()

	if *treeMode {
		f, err := tree.NewFleet(tree.FleetConfig{N: *treeN, Fanout: *treeFanout})
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if _, err := f.Tick(context.Background()); err != nil {
			fatal(err)
		}
		f.PrintTopology(os.Stdout, time.Now())
		return
	}

	loc := agas.NewLocality(0, "counterls")
	reg := loc.Registry()

	rt := taskrt.New(taskrt.WithWorkers(*threads))
	defer rt.Shutdown()
	if err := rt.RegisterCounters(reg); err != nil {
		fatal(err)
	}
	if err := stdrt.New().RegisterCounters(reg); err != nil {
		fatal(err)
	}
	if err := hwsim.NewAccumulator(machine.IvyBridge(), 0).RegisterCounters(reg); err != nil {
		fatal(err)
	}
	_ = inncabs.All() // ensure the suite links, for -discover examples in docs

	if *discover != "" {
		names, err := reg.Discover(*discover)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n.String())
		}
		return
	}
	perfcli.ListTo(os.Stdout, reg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "counterls:", err)
	os.Exit(1)
}
