// Command counterls lists the performance-counter types a fully
// provisioned locality exposes: the task runtime's thread-manager
// counters, the runtime memory/uptime counters, the baseline's
// stdthreads counters, the modelled PAPI hardware counters, the AGAS and
// parcel counters, and the statistics/arithmetics meta counter families.
//
// With -discover PATTERN it expands a (wildcarded) counter name into the
// matching concrete instances instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agas"
	"repro/internal/hwsim"
	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/perfcli"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

func main() {
	var (
		threads  = flag.Int("threads", 2, "worker threads of the sample runtime")
		discover = flag.String("discover", "", "expand a counter pattern into matching instances")
	)
	flag.Parse()

	loc := agas.NewLocality(0, "counterls")
	reg := loc.Registry()

	rt := taskrt.New(taskrt.WithWorkers(*threads))
	defer rt.Shutdown()
	if err := rt.RegisterCounters(reg); err != nil {
		fatal(err)
	}
	if err := stdrt.New().RegisterCounters(reg); err != nil {
		fatal(err)
	}
	if err := hwsim.NewAccumulator(machine.IvyBridge(), 0).RegisterCounters(reg); err != nil {
		fatal(err)
	}
	_ = inncabs.All() // ensure the suite links, for -discover examples in docs

	if *discover != "" {
		names, err := reg.Discover(*discover)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n.String())
		}
		return
	}
	perfcli.ListTo(os.Stdout, reg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "counterls:", err)
	os.Exit(1)
}
