// Cluster: local and remote execution under one model. A "compute
// node" locality runs a task pool and exposes a fib action over the
// parcel layer; the "driver" locality splits the same computation
// between its own pool (taskrt.AsyncF) and the remote node
// (parcel.InvokeAsync) — and afterwards reads both localities' task
// counters through one AGAS resolver, routed purely by the locality#N
// prefix in the counter names. The paper's unified parallel/distributed
// API and location-transparent counters, in ~100 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/agas"
	"repro/internal/parcel"
	"repro/internal/taskrt"
)

func fibOn(rt *taskrt.Runtime, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 12 {
		return fibOn(rt, n-1) + fibOn(rt, n-2)
	}
	l := taskrt.AsyncF(rt, func() int64 { return fibOn(rt, n-1) })
	return fibOn(rt, n-2) + l.Get()
}

func main() {
	// --- Locality 1: the remote compute node. ---
	node := agas.NewLocality(1, "compute-node")
	nodeRT := taskrt.New(taskrt.WithWorkers(2), taskrt.WithLocality(1))
	defer nodeRT.Shutdown()
	if err := nodeRT.RegisterCounters(node.Registry()); err != nil {
		log.Fatal(err)
	}
	srv, err := parcel.Serve("127.0.0.1:0", node.Registry(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	actions := parcel.NewActionMap()
	if err := parcel.RegisterAction(actions, "fib", func(n int) (int64, error) {
		return fibOn(nodeRT, n), nil
	}); err != nil {
		log.Fatal(err)
	}
	srv.WithActions(actions)

	// --- Locality 0: the driver. ---
	driver := agas.NewLocality(0, "driver")
	driverRT := taskrt.New(taskrt.WithWorkers(2), taskrt.WithLocality(0))
	defer driverRT.Shutdown()
	if err := driverRT.RegisterCounters(driver.Registry()); err != nil {
		log.Fatal(err)
	}
	cli, err := parcel.Dial(srv.Addr(), driver.Registry(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	resolver := agas.NewResolver()
	if err := resolver.Bind(driver); err != nil {
		log.Fatal(err)
	}
	if err := resolver.BindRemote(1, cli); err != nil {
		log.Fatal(err)
	}

	// Split fib(30) = fib(29) + fib(28): one term remote, one local.
	// Same future-shaped API either way.
	remote := parcel.InvokeAsync[int, int64](cli, "fib", 29)
	local := taskrt.AsyncF(driverRT, func() int64 { return fibOn(driverRT, 28) })

	rv, err := remote.Get()
	if err != nil {
		log.Fatal(err)
	}
	total := rv + local.Get()
	fmt.Printf("fib(30) = %d  (fib(29) on locality 1 + fib(28) on locality 0)\n", total)

	// One resolver, two localities, identical query syntax.
	for _, name := range []string{
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#1/total}/count/cumulative",
		"/parcels{locality#1/total}/count/received",
	} {
		v, err := resolver.EvaluateCounter(name, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s = %d\n", name, v.Raw)
	}
}
