// Distributed: two localities in one program — a "compute node" running
// tasks behind a parcel server, and a "monitor" that discovers and reads
// the node's counters purely over TCP, including composing a local
// statistics counter over a remote one. This is the paper's claim that
// any counter is accessible remotely with the same API as locally.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/parcel"
	"repro/internal/taskrt"
)

func main() {
	// --- Locality 0: the compute node. ---
	node := agas.NewLocality(0, "compute-node")
	rt := taskrt.New(taskrt.WithWorkers(4))
	defer rt.Shutdown()
	if err := rt.RegisterCounters(node.Registry()); err != nil {
		log.Fatal(err)
	}
	srv, err := parcel.Serve("127.0.0.1:0", node.Registry(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("compute node serving counters on %s\n", srv.Addr())

	// Background load on the node.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			fs := make([]*taskrt.Future[int], 64)
			for j := range fs {
				fs[j] = taskrt.AsyncF(rt, func() int {
					t := time.Now()
					for time.Since(t) < 100*time.Microsecond {
					}
					return 0
				})
			}
			taskrt.WaitAllOf(fs)
		}
	}()

	// --- Locality 1: the monitor, talking TCP only. ---
	monitor := agas.NewLocality(1, "monitor")
	cli, err := parcel.Dial(srv.Addr(), monitor.Registry(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	names, err := cli.Discover("/threads{locality#0/worker-thread#*}/count/cumulative")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d per-worker counters remotely\n", len(names))

	// A remote counter is a core.Counter: wrap it and aggregate locally.
	remote, err := parcel.NewRemoteCounter(cli, "/threads{locality#0/total}/count/cumulative")
	if err != nil {
		log.Fatal(err)
	}
	monitor.Registry().MustRegister(remote)
	maxC, err := monitor.Registry().Get(
		"/statistics{/threads{locality#0/total}/count/cumulative}/max@100")
	if err != nil {
		log.Fatal(err)
	}
	sc := maxC.(*core.StatisticsCounter)

	for i := 0; i < 5; i++ {
		time.Sleep(50 * time.Millisecond)
		sc.Sample()
		v, err := cli.Evaluate("/threads{locality#0/total}/count/cumulative", false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t+%dms: node executed %d tasks (remote read)\n", (i+1)*50, v.Raw)
	}
	<-done
	fmt.Printf("max tasks observed through the local statistics counter over the remote: %.0f\n",
		sc.Value(false).Float64())

	// The transport itself is counted, on both sides.
	sent, _ := monitor.Registry().Evaluate("/parcels{locality#1/total}/count/sent", false)
	recv, _ := node.Registry().Evaluate("/parcels{locality#0/total}/count/received", false)
	fmt.Printf("parcels: monitor sent %d, node received %d\n", sent.Raw, recv.Raw)
}
