// Quickstart: spawn tasks on the lightweight runtime, wait on futures,
// and read the runtime's performance counters through the uniform
// counter framework — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/taskrt"
)

func fib(rt *taskrt.Runtime, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 12 { // sequential below the cutoff
		return fib(rt, n-1) + fib(rt, n-2)
	}
	// One child runs as a task, the other inline; Get on a worker
	// executes other pending tasks while it waits (help-first).
	left := taskrt.AsyncF(rt, func() int64 { return fib(rt, n-1) })
	right := fib(rt, n-2)
	return left.Get() + right
}

func main() {
	// A runtime with four workers, instrumented into a counter registry.
	rt := taskrt.New(taskrt.WithWorkers(runtime.GOMAXPROCS(0)))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		log.Fatal(err)
	}

	// Launch policies mirror HPX: Async, Sync, Fork, Deferred.
	hello := taskrt.Spawn(rt, taskrt.Async, func() string { return "hello from a task" })
	fmt.Println(hello.Get())

	fmt.Printf("fib(28) = %d\n", fib(rt, 28))

	// Counters are addressed by hierarchical name, evaluated on demand.
	for _, name := range []string{
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#0/total}/time/average",
		"/threads{locality#0/total}/time/average-overhead",
		"/threads{locality#0/total}/count/stolen",
		"/threads{locality#0/total}/idle-rate",
	} {
		v, err := reg.Evaluate(name, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s = %.1f %s\n", name, v.Float64(), unitOf(reg, v.Name))
	}

	// Meta counters compose: the average of a ratio of two counters.
	ratio, err := reg.Evaluate(
		"/arithmetics/divide@/threads{locality#0/total}/time/cumulative-overhead,"+
			"/threads{locality#0/total}/time/cumulative", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduling overhead per unit of task time: %.4f\n", ratio.Float64())
}

func unitOf(reg *core.Registry, fullName string) string {
	c, err := reg.Get(fullName)
	if err != nil {
		return ""
	}
	return c.Info().Unit
}
