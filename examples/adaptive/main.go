// Adaptive: the paper's §VII outlook made concrete. An APEX-style policy
// engine samples the runtime's idle-rate counter and throttles the
// number of active workers when the machine idles, releasing them again
// when load returns — measurement driving runtime adaptation through
// the same counter framework the measurements come from.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apex"
	"repro/internal/core"
	"repro/internal/inncabs"
	"repro/internal/taskrt"
)

func main() {
	rt := taskrt.New(taskrt.WithWorkers(8))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		log.Fatal(err)
	}

	engine := apex.NewEngine(reg)
	// Throttle below 20% utilisation, grow above 90% (idle-rate counter
	// reports 0.01% units: 8000 = 80% idle).
	policy := apex.IdleThrottlePolicy(rt, 50*time.Millisecond, 1000, 8000)
	if err := engine.AddPolicy(policy); err != nil {
		log.Fatal(err)
	}
	engine.Start()
	defer engine.Stop()

	idleName := "/threads{locality#0/total}/idle-rate"
	report := func(phase string) {
		v, err := reg.Evaluate(idleName, true) // evaluate-and-reset the window
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s idle-rate %5.1f%%  active workers %d/%d\n",
			phase, v.Float64()/100, rt.ConcurrencyLimit(), rt.NumWorkers())
	}

	// Phase 1: idle. The policy steps the worker count down.
	time.Sleep(400 * time.Millisecond)
	report("idle")

	// Phase 2: sustained load. The policy steps the workers back up.
	sort, err := inncabs.ByName("sort")
	if err != nil {
		log.Fatal(err)
	}
	hrt := inncabs.NewHPX(rt)
	for i := 0; i < 8; i++ {
		sort.Run(hrt, inncabs.Small)
		time.Sleep(20 * time.Millisecond)
	}
	report("loaded")

	fmt.Println("\npolicy actions:")
	for _, ev := range engine.Events() {
		fmt.Printf("  %s  %s fired (idle-rate %.1f%%)\n",
			ev.Time.Format("15:04:05.000"), ev.Policy, ev.Value.Float64()/100)
	}
	if n := len(engine.Events()); n == 0 {
		fmt.Println("  (none)")
	} else {
		fmt.Printf("  %d adaptation(s) total\n", n)
	}
}
