// Fibmonitor: in-situ monitoring of a running computation. While a
// deeply recursive fib computation floods the runtime with fine-grained
// tasks, the perfcli layer samples the thread-manager counters
// periodically — the paper's --print-counter-interval workflow — and a
// rolling statistics counter tracks the task-throughput rate.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/perfcli"
	"repro/internal/taskrt"
)

func fib(rt *taskrt.Runtime, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	if n < 14 {
		return fib(rt, n-1) + fib(rt, n-2)
	}
	left := taskrt.AsyncF(rt, func() int64 { return fib(rt, n-1) })
	return fib(rt, n-2) + left.Get()
}

func main() {
	rt := taskrt.New(taskrt.WithWorkers(runtime.GOMAXPROCS(0)))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		log.Fatal(err)
	}

	// Periodic CSV sampling of three counters, exactly as the command
	// line flags -print-counter ... -print-counter-interval 100ms would
	// configure it.
	opts := &perfcli.Options{
		Counters: []string{
			"/threads{locality#0/total}/count/cumulative",
			"/threads{locality#0/total}/time/average",
			"/threads{locality#0/total}/count/instantaneous/pending",
		},
		Interval: 100 * time.Millisecond,
	}
	session, err := opts.Start(reg)
	if err != nil {
		log.Fatal(err)
	}

	// A rate counter derives task throughput from the cumulative count;
	// its background sampler starts with the active set.
	rateC, err := reg.Get(
		"/statistics{/threads{locality#0/total}/count/cumulative}/rate@50")
	if err != nil {
		log.Fatal(err)
	}
	rate := rateC.(*core.StatisticsCounter)
	rate.Start()
	defer rate.Stop()

	start := time.Now()
	result := fib(rt, 34)
	elapsed := time.Since(start)

	if err := session.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfib(34) = %d in %v\n", result, elapsed.Round(time.Millisecond))
	if v := rate.Value(false); v.Valid() {
		fmt.Printf("mean task throughput while running: %.0f tasks/s\n", v.Float64())
	}
	total, _ := reg.Evaluate("/threads{locality#0/total}/count/cumulative", false)
	avg, _ := reg.Evaluate("/threads{locality#0/total}/time/average", false)
	fmt.Printf("tasks executed: %d, average task duration: %v\n",
		total.Raw, time.Duration(avg.Float64()).Round(time.Microsecond))
}
