package repro

// End-to-end smoke tests of the four command-line tools: each binary is
// built once into a temp dir and exercised through its primary flows,
// including the remote-monitoring path across two real processes.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles all cmd binaries once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		// Not t.TempDir(): the directory must outlive the first test
		// that triggers the build.
		binDir, buildErr = os.MkdirTemp("", "repro-cmd-*")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir, "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building cmd binaries: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCmdCounterls(t *testing.T) {
	out := runTool(t, "counterls")
	for _, want := range []string{"/threads/time/average", "/papi/OFFCORE_REQUESTS", "/statistics/average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("counterls missing %q", want)
		}
	}
	out = runTool(t, "counterls", "-discover", "/threads{locality#0/worker-thread#*}/time/average")
	if !strings.Contains(out, "worker-thread#0") || !strings.Contains(out, "worker-thread#1") {
		t.Fatalf("discover output: %q", out)
	}
}

func TestCmdInncabs(t *testing.T) {
	out := runTool(t, "inncabs", "-bench", "nqueens", "-size", "test",
		"-threads", "2", "-samples", "2",
		"-print-counter", "/threads{locality#0/total}/count/cumulative")
	if !strings.Contains(out, "verification: OK") {
		t.Fatalf("inncabs output:\n%s", out)
	}
	if !strings.Contains(out, "/threads{locality#0/total}/count/cumulative,") {
		t.Fatalf("no counter CSV in output:\n%s", out)
	}
	// The std runtime path.
	out = runTool(t, "inncabs", "-bench", "fib", "-size", "test", "-runtime", "std", "-samples", "1")
	if !strings.Contains(out, "C++11 Std") || !strings.Contains(out, "verification: OK") {
		t.Fatalf("std run output:\n%s", out)
	}
	// Benchmark listing.
	out = runTool(t, "inncabs", "-list-benchmarks")
	if strings.Count(out, "\n") < 14 {
		t.Fatalf("listing too short:\n%s", out)
	}
}

func TestCmdRepro(t *testing.T) {
	out := runTool(t, "repro", "-list")
	if !strings.Contains(out, "table5") || !strings.Contains(out, "fig14") {
		t.Fatalf("repro -list:\n%s", out)
	}
	out = runTool(t, "repro", "-only", "fig1", "-size", "test")
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "HPX") {
		t.Fatalf("repro fig1:\n%s", out)
	}
	csvDir := t.TempDir()
	runTool(t, "repro", "-only", "table3", "-csv", csvDir)
	matches, err := filepath.Glob(filepath.Join(csvDir, "fig*.csv"))
	if err != nil || len(matches) != 14 {
		t.Fatalf("csv export: %v (%v)", matches, err)
	}
}

func TestCmdPerfmonAgainstLiveServer(t *testing.T) {
	// A real parcel server in this process, the perfmon binary as the
	// remote monitor.
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "tasks"})
	reg.MustRegister(c)
	c.Add(77)
	srv, err := parcel.Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	out := runTool(t, "perfmon", "-addr", srv.Addr(), "-types")
	if !strings.Contains(out, "/threads/count/cumulative") {
		t.Fatalf("perfmon -types:\n%s", out)
	}
	out = runTool(t, "perfmon", "-addr", srv.Addr(),
		"-counter", "/threads{locality#0/total}/count/cumulative", "-n", "2", "-interval", "1ms")
	if strings.Count(out, "= 77") != 2 {
		t.Fatalf("perfmon samples:\n%s", out)
	}
}

func TestCmdInncabsProfile(t *testing.T) {
	out := runTool(t, "inncabs", "-bench", "fib", "-size", "test",
		"-threads", "2", "-samples", "1", "-profile")
	for _, want := range []string{
		"DAG profile", "work", "span (critical path)", "makespan",
		"logical (work/span)", "achieved (work/makespan)",
		"top spawn sites:", "fib.go:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdInncabsTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out := runTool(t, "inncabs", "-bench", "sort", "-size", "test",
		"-threads", "2", "-samples", "1", "-trace", traceFile)
	if !strings.Contains(out, "task events written") {
		t.Fatalf("trace flag output:\n%s", out)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if m, _ := filepath.Glob(traceFile); len(m) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace file not written")
		}
	}
}
