package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation: each regenerates its experiment through the same harness
// cmd/repro uses (internal/bench), at Test size so the full sweep stays
// CI-friendly. Run `go run ./cmd/repro -size paper` for the
// paper-scale numbers recorded in EXPERIMENTS.md.
//
// The trailing benchmarks exercise the real runtimes (not the
// simulator): task spawn/join throughput on the work-stealing runtime,
// the thread-per-task baseline, and a counter-query round trip.

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/stdrt"
	"repro/internal/taskrt"
)

// benchExperiment regenerates one experiment id per iteration.
func benchExperiment(b *testing.B, id string) {
	m := machine.IvyBridge()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, id, inncabs.Test, m); err != nil {
			b.Fatalf("Run(%s): %v", id, err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }

// BenchmarkTaskSpawnJoin measures the real runtime's per-task cost:
// spawn + execute + join of an empty task from inside another task.
func BenchmarkTaskSpawnJoin(b *testing.B) {
	rt := taskrt.New(taskrt.WithWorkers(1))
	defer rt.Shutdown()
	b.ReportAllocs()
	root := taskrt.AsyncF(rt, func() int {
		for i := 0; i < b.N; i++ {
			taskrt.AsyncF(rt, func() int { return 1 }).Get()
		}
		return 0
	})
	root.Get()
}

// BenchmarkStdSpawnJoin measures the thread-per-task baseline's per-task
// cost for comparison — the gap is the paper's headline mechanism.
func BenchmarkStdSpawnJoin(b *testing.B) {
	rt := stdrt.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stdrt.Spawn(rt, func() int { return 1 }).Get()
	}
}

// BenchmarkCounterEvaluate measures one counter query against a live
// runtime — the cost of the paper's in-situ measurement path.
func BenchmarkCounterEvaluate(b *testing.B) {
	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		b.Fatal(err)
	}
	name := "/threads{locality#0/total}/count/cumulative"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Evaluate(name, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInncabsSortReal runs the full sort benchmark on the real
// work-stealing runtime (Test size), end to end.
func BenchmarkInncabsSortReal(b *testing.B) {
	sort, err := inncabs.ByName("sort")
	if err != nil {
		b.Fatal(err)
	}
	rt := taskrt.New()
	defer rt.Shutdown()
	hrt := inncabs.NewHPX(rt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sort.Run(hrt, inncabs.Test)
	}
}

// BenchmarkSimulatorThroughput measures simulated tasks per second of
// the discrete-event engine on a mid-size graph.
func BenchmarkSimulatorThroughput(b *testing.B) {
	uts, err := inncabs.ByName("uts")
	if err != nil {
		b.Fatal(err)
	}
	g := uts.TaskGraph(inncabs.Small)
	tasks := g.Stats().Tasks
	m := machine.IvyBridge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := simRun(m, g)
		if err != nil || r.Tasks != tasks {
			b.Fatalf("sim: %v (%d tasks)", err, r.Tasks)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkAblation regenerates the cost-model ablation table.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkGrainSweep regenerates the granularity-sweep experiment.
func BenchmarkGrainSweep(b *testing.B) { benchExperiment(b, "grainsweep") }
